#include "baselines/antman.h"
#include "baselines/common.h"
#include "cluster/placement.h"
#include "core/alloc_state.h"
#include "core/predictor.h"
#include "plan/execution_plan.h"
#include "trace/job.h"

#include <algorithm>

#include "common/error.h"

namespace rubick {

const PlanSelector& AntManPolicy::selector_for(const JobSpec& spec) {
  auto it = selectors_.find(spec.id);
  if (it == selectors_.end()) {
    // Guaranteed jobs run exactly as submitted. Best-effort DP-family jobs
    // are elastically DP-scaled into leftovers (AntMan's dynamic scaling).
    std::unique_ptr<PlanSelector> sel;
    if (!spec.guaranteed && spec.initial_plan.tp == 1 &&
        spec.initial_plan.pp == 1)
      sel = std::make_unique<ScaledDpSelector>(spec.initial_plan);
    else
      sel = std::make_unique<FixedPlanSelector>(spec.initial_plan);
    it = selectors_.emplace(spec.id, std::move(sel)).first;
  }
  return *it->second;
}

std::vector<Assignment> AntManPolicy::schedule(const SchedulerInput& input) {
  RUBICK_CHECK(input.models != nullptr && input.estimator != nullptr);
  if (bound_store_ != input.models ||
      bound_version_ != input.models->version()) {
    // Rebind (and drop prediction caches) when the store was swapped or a
    // model was refitted online.
    predictor_ = std::make_unique<BestPlanPredictor>(
        *input.cluster, *input.models, *input.estimator);
    bound_store_ = input.models;
    bound_version_ = input.models->version();
  }

  std::vector<std::pair<int, Placement>> running;
  for (const auto& v : input.jobs)
    if (v.running) running.emplace_back(v.spec->id, v.placement);
  AllocState state(*input.cluster, running, input.down_nodes);

  std::map<int, ExecutionPlan> chosen;
  for (const auto& v : input.jobs)
    if (v.running) chosen[v.spec->id] = v.plan;

  std::map<std::string, int> quota_used;
  for (const auto& v : input.jobs)
    if (v.running && v.spec->guaranteed)
      quota_used[v.spec->tenant] += v.spec->requested.gpus;

  auto cpu_per_gpu = [](const JobSpec& spec) {
    return std::max(1, (spec.requested.cpus + spec.requested.gpus - 1) /
                           spec.requested.gpus);
  };

  auto try_place = [&](const JobView& v) {
    const JobSpec& spec = *v.spec;
    const int chunk = std::max(1, spec.initial_plan.tp);
    if (!pack_job(state, *input.cluster, spec.id, spec.requested.gpus,
                  cpu_per_gpu(spec), chunk))
      return false;
    if (!commit_job_plan(state, *predictor_, *input.estimator, *input.models,
                         *input.cluster, v, selector_for(spec), chosen)) {
      state.release_job(spec.id);
      chosen.erase(spec.id);
      return false;
    }
    return true;
  };

  // --- Guaranteed jobs FCFS within quota; may evict best-effort jobs. ---
  std::vector<const JobView*> pending_guaranteed;
  std::vector<const JobView*> pending_best_effort;
  for (const auto& v : input.jobs) {
    if (v.running) continue;
    (v.spec->guaranteed ? pending_guaranteed : pending_best_effort)
        .push_back(&v);
  }
  auto fcfs = [](const JobView* a, const JobView* b) {
    return a->queued_since < b->queued_since;
  };
  std::sort(pending_guaranteed.begin(), pending_guaranteed.end(), fcfs);
  std::sort(pending_best_effort.begin(), pending_best_effort.end(), fcfs);

  for (const JobView* v : pending_guaranteed) {
    const JobSpec& spec = *v->spec;
    const auto quota_it = quota_.find(spec.tenant);
    if (quota_it != quota_.end() &&
        quota_used[spec.tenant] + spec.requested.gpus > quota_it->second)
      continue;

    if (!try_place(*v)) {
      // Evict running best-effort jobs (least progress first) until the
      // guaranteed job fits or none are left.
      std::vector<const JobView*> victims;
      for (const auto& r : input.jobs)
        if (r.running && !r.spec->guaranteed &&
            state.job_gpus(r.spec->id) > 0)
          victims.push_back(&r);
      std::sort(victims.begin(), victims.end(),
                [](const JobView* a, const JobView* b) {
                  return a->samples_done < b->samples_done;
                });
      bool placed = false;
      for (const JobView* victim : victims) {
        state.release_job(victim->spec->id);
        chosen.erase(victim->spec->id);
        if (try_place(*v)) {
          placed = true;
          break;
        }
      }
      if (!placed) continue;
    }
    quota_used[spec.tenant] += spec.requested.gpus;
  }

  // --- Best-effort jobs into whatever is left: FCFS, DP-scaled down to
  // the largest feasible size that fits (dynamic scaling). ---
  auto try_place_scaled = [&](const JobView& v) {
    const JobSpec& spec = *v.spec;
    const int id = spec.id;
    const int shard =
        std::max(1, spec.initial_plan.tp * spec.initial_plan.pp);
    const int chunk = std::max(1, spec.initial_plan.tp);
    for (int g = spec.requested.gpus; g >= shard; g -= shard) {
      if (!pack_job(state, *input.cluster, id, g, cpu_per_gpu(spec), chunk))
        continue;
      if (commit_job_plan(state, *predictor_, *input.estimator, *input.models,
                          *input.cluster, v, selector_for(spec), chosen))
        return true;
      state.release_job(id);
      chosen.erase(id);
    }
    return false;
  };
  for (const JobView* v : pending_best_effort) try_place_scaled(*v);

  // Grow running best-effort jobs back toward their request when leftovers
  // allow and the job has been stable for a while (avoid restart thrash).
  for (const auto& v : input.jobs) {
    if (!v.running || v.spec->guaranteed) continue;
    const int cur = state.job_gpus(v.spec->id);
    if (cur <= 0 || cur >= v.spec->requested.gpus) continue;
    const double T = v.total_active_time_s;
    const double nd = (v.reconfig_count + 1) * input.reconfig_penalty_s;
    if (T <= 0.0 || (T - nd) / T < 0.97) continue;
    const auto snap = state.snapshot();
    const auto chosen_snap = chosen;
    state.release_job(v.spec->id);
    chosen.erase(v.spec->id);
    if (!try_place_scaled(v) || state.job_gpus(v.spec->id) <= cur) {
      state.restore(snap);
      chosen = chosen_snap;
    }
  }

  return emit_assignments(state, input, chosen, provenance(), name());
}

}  // namespace rubick
