// The "simple scheduler" of the paper's Fig. 8 micro-benchmark: splits the
// cluster's GPUs evenly across jobs, but — like Rubick — is allowed to
// reconfigure execution plans, so the comparison isolates the scheduling
// policy (sensitivity-aware vs. egalitarian allocation).
#pragma once

#include "core/predictor.h"
#include "perf/perf_store.h"

#include <memory>

#include "core/plan_selector.h"
#include "core/scheduler.h"

namespace rubick {

class EqualSharePolicy final : public SchedulerPolicy {
 public:
  EqualSharePolicy() = default;

  std::string name() const override { return "EqualShare"; }
  std::vector<Assignment> schedule(const SchedulerInput& input) override;

 private:
  std::unique_ptr<BestPlanPredictor> predictor_;
  const PerfModelStore* bound_store_ = nullptr;
  std::uint64_t bound_version_ = 0;
  FullPlanSelector selector_;
};

}  // namespace rubick
