// AntMan baseline (Xiao et al., OSDI'20), as modelled in the paper's
// evaluation (§7.3): a multi-tenant scheduler with resource guarantees.
// Guaranteed jobs receive exactly their requested resources (consuming the
// tenant's GPU quota) FCFS; best-effort jobs run opportunistically on
// leftover resources — dynamically scaled down along the DP dimension to
// fit (AntMan's "dynamic scaling"), grown back when space frees up, and
// preempted whenever a guaranteed job needs the space. Execution plans are
// never reconfigured beyond that DP scaling. The key contrast with Rubick:
// AntMan guarantees the requested *resources*, Rubick guarantees the
// corresponding *performance* (often achievable with fewer resources and a
// better plan).
#pragma once

#include "core/predictor.h"
#include "perf/perf_store.h"
#include "trace/job.h"

#include <map>
#include <memory>

#include "core/plan_selector.h"
#include "core/scheduler.h"

namespace rubick {

class AntManPolicy final : public SchedulerPolicy {
 public:
  explicit AntManPolicy(std::map<std::string, int> tenant_quota_gpus = {})
      : quota_(std::move(tenant_quota_gpus)) {}

  std::string name() const override { return "AntMan"; }
  std::vector<Assignment> schedule(const SchedulerInput& input) override;

 private:
  const PlanSelector& selector_for(const JobSpec& spec);

  std::map<std::string, int> quota_;
  std::unique_ptr<BestPlanPredictor> predictor_;
  const PerfModelStore* bound_store_ = nullptr;
  std::uint64_t bound_version_ = 0;
  std::map<int, std::unique_ptr<PlanSelector>> selectors_;
};

}  // namespace rubick
