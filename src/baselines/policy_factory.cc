#include "baselines/policy_factory.h"

#include "baselines/antman.h"
#include "baselines/equal_share.h"
#include "baselines/sia.h"
#include "baselines/synergy.h"
#include "baselines/tiresias.h"
#include "common/error.h"
#include "core/rubick_policy.h"

namespace rubick {

namespace {

std::unique_ptr<SchedulerPolicy> make_rubick(const std::string& variant,
                                             const PolicyParams& params) {
  RubickConfig config;
  if (variant == "rubick-e") config = RubickPolicy::plans_only();
  if (variant == "rubick-r") config = RubickPolicy::resources_only();
  if (variant == "rubick-n") config = RubickPolicy::neither();
  config.tenant_quota_gpus = params.tenant_quota_gpus;
  config.gate_threshold = params.gate_threshold;
  config.opportunistic_admission = params.opportunistic_admission;
  config.decide_engine = params.decide_engine;
  return std::make_unique<RubickPolicy>(config);
}

}  // namespace

PolicyFactory::PolicyFactory() {
  for (const char* variant : {"rubick", "rubick-e", "rubick-r", "rubick-n"}) {
    builders_[variant] = [variant](const PolicyParams& params) {
      return make_rubick(variant, params);
    };
  }
  builders_["sia"] = [](const PolicyParams& params) {
    return std::make_unique<SiaPolicy>(params.gate_threshold);
  };
  builders_["synergy"] = [](const PolicyParams&) {
    return std::make_unique<SynergyPolicy>();
  };
  builders_["antman"] = [](const PolicyParams& params) {
    return std::make_unique<AntManPolicy>(params.tenant_quota_gpus);
  };
  builders_["tiresias"] = [](const PolicyParams&) {
    return std::make_unique<TiresiasPolicy>();
  };
  builders_["equal-share"] = [](const PolicyParams&) {
    return std::make_unique<EqualSharePolicy>();
  };
}

const PolicyFactory& PolicyFactory::global() {
  static const PolicyFactory factory;
  return factory;
}

std::unique_ptr<SchedulerPolicy> PolicyFactory::create(
    const std::string& name, const PolicyParams& params) const {
  auto it = builders_.find(name);
  if (it == builders_.end()) {
    std::string known_names;
    for (const std::string& n : names())
      known_names += (known_names.empty() ? "" : ", ") + n;
    RUBICK_CHECK_MSG(false, "unknown policy '" << name << "'; one of: "
                                               << known_names);
  }
  return it->second(params);
}

bool PolicyFactory::known(const std::string& name) const {
  return builders_.count(name) > 0;
}

std::vector<std::string> PolicyFactory::names() const {
  std::vector<std::string> out;
  out.reserve(builders_.size());
  for (const auto& [name, builder] : builders_) out.push_back(name);
  return out;  // std::map iteration is already sorted
}

bool PolicyFactory::rubick_family(const std::string& name) {
  return name == "rubick" || name == "rubick-e" || name == "rubick-r" ||
         name == "rubick-n";
}

}  // namespace rubick
