#include "baselines/equal_share.h"
#include "baselines/common.h"
#include "core/alloc_state.h"
#include "core/predictor.h"
#include "model/model_spec.h"
#include "plan/execution_plan.h"

#include <algorithm>

#include "common/error.h"
#include "model/model_zoo.h"

namespace rubick {

std::vector<Assignment> EqualSharePolicy::schedule(
    const SchedulerInput& input) {
  RUBICK_CHECK(input.models != nullptr && input.estimator != nullptr);
  if (bound_store_ != input.models ||
      bound_version_ != input.models->version()) {
    // Rebind (and drop prediction caches) when the store was swapped or a
    // model was refitted online.
    predictor_ = std::make_unique<BestPlanPredictor>(
        *input.cluster, *input.models, *input.estimator);
    bound_store_ = input.models;
    bound_version_ = input.models->version();
  }

  // Rebuild the whole allocation from scratch: every job gets an equal GPU
  // share (rounded down to a count it can actually use).
  AllocState state(*input.cluster, {}, input.down_nodes);
  std::map<int, ExecutionPlan> chosen;

  const int n = static_cast<int>(input.jobs.size());
  if (n == 0) return {};
  const int share = std::max(1, input.cluster->total_gpus() / n);
  const int cpu_share =
      std::max(2, input.cluster->num_nodes * input.cluster->node.cpus / n /
                      std::max(1, share));

  for (const auto& v : input.jobs) {
    const ModelSpec& model = find_model(v.spec->model_name);
    // Largest usable count within the share (envelope is flat on invalid
    // counts, so walk down to the smallest count with the same value).
    int g = share;
    const double value = predictor_->envelope(model, v.spec->global_batch,
                                              selector_, g, cpu_share * g);
    while (g > 1 &&
           predictor_->envelope(model, v.spec->global_batch, selector_, g - 1,
                                cpu_share * (g - 1)) + 1e-12 >=
               value)
      --g;
    if (value <= 0.0) continue;  // infeasible even at the share
    if (!pack_job(state, *input.cluster, v.spec->id, g, cpu_share, 1)) continue;
    if (!commit_job_plan(state, *predictor_, *input.estimator, *input.models,
                         *input.cluster, v, selector_, chosen)) {
      state.release_job(v.spec->id);
      chosen.erase(v.spec->id);
    }
  }

  return emit_assignments(state, input, chosen, provenance(), name());
}

}  // namespace rubick
