// Synergy baseline (Mohan et al., OSDI'22), as modelled in the paper's
// evaluation (§7.3): keeps each job's GPU count fixed at its request and its
// execution plan fixed at the user's choice, but breaks away from
// GPU-proportional CPU allocation — CPU-sensitive jobs (ZeRO-Offload) get
// extra cores at placement time while insensitive jobs run at the floor.
// Jobs are gang-scheduled FCFS with backfill; placements never change after
// start.
#pragma once

#include "core/predictor.h"
#include "perf/perf_store.h"
#include "trace/job.h"

#include <map>
#include <memory>

#include "core/plan_selector.h"
#include "core/scheduler.h"

namespace rubick {

class SynergyPolicy final : public SchedulerPolicy {
 public:
  SynergyPolicy() = default;

  std::string name() const override { return "Synergy"; }
  std::vector<Assignment> schedule(const SchedulerInput& input) override;

 private:
  const PlanSelector& selector_for(const JobSpec& spec);

  std::unique_ptr<BestPlanPredictor> predictor_;
  const PerfModelStore* bound_store_ = nullptr;
  std::uint64_t bound_version_ = 0;
  std::map<int, std::unique_ptr<PlanSelector>> selectors_;
};

}  // namespace rubick
