// Shared machinery for the baseline schedulers: GPU packing onto nodes and
// plan+memory commit. All baselines run against the same AllocState /
// BestPlanPredictor substrate as Rubick so the comparison isolates policy
// differences (paper §7.3).
#pragma once

#include <map>
#include <string>

#include "cluster/cluster.h"
#include "core/alloc_state.h"
#include "core/plan_selector.h"
#include "core/predictor.h"
#include "core/scheduler.h"
#include "perf/perf_store.h"
#include "plan/execution_plan.h"
#include "plan/memory_estimator.h"
#include "provenance/provenance.h"

namespace rubick {

// Packs `gpus` GPUs (with cpu_per_gpu CPUs each) for `job_id`, preferring as
// few nodes as possible; every per-node slice is a multiple of `chunk`
// (pass the plan's TP size so tensor-parallel groups stay intra-node).
// Returns false — leaving the state untouched — if the resources don't fit.
bool pack_job(AllocState& state, const ClusterSpec& cluster, int job_id,
              int gpus, int cpu_per_gpu, int chunk = 1);

// GetBestPlan + AllocMem for the job's current slices in `state`. Picks the
// highest-predicted-throughput plan whose host memory fits; if the job is
// running with an unchanged placement shape, keeps the current plan unless
// the best plan clears `switch_gain`. Records the choice in `chosen`.
bool commit_job_plan(AllocState& state, BestPlanPredictor& predictor,
                     const MemoryEstimator& estimator,
                     const PerfModelStore& store, const ClusterSpec& cluster,
                     const JobView& view, const PlanSelector& selector,
                     std::map<int, ExecutionPlan>& chosen,
                     double switch_gain = 1.05);

// Emits assignments for every job holding GPUs in `state`, then pipes them
// through the shared fault-tolerance post-pass (core/fault_tolerance.h) so
// every baseline honors retry backoff, degradation pinning and the
// down-node guard — a no-op for fault-free inputs.
//
// When `provenance` is non-null one RoundRecord is appended describing the
// round: per-job decision kinds, allocation deltas, SLA and fault-gating
// facts (baselines carry no curve evidence or trade chains — those are
// Rubick-specific). Pass the policy's name() so the log is self-describing.
std::vector<Assignment> emit_assignments(
    const AllocState& state, const SchedulerInput& input,
    const std::map<int, ExecutionPlan>& chosen,
    ProvenanceRecorder* provenance = nullptr,
    const std::string& policy_name = {});

}  // namespace rubick
