#include "baselines/tiresias.h"
#include "baselines/common.h"
#include "core/alloc_state.h"
#include "core/predictor.h"
#include "plan/execution_plan.h"
#include "trace/job.h"

#include <algorithm>

#include "common/error.h"
#include "model/model_zoo.h"

namespace rubick {

const PlanSelector& TiresiasPolicy::selector_for(const JobSpec& spec) {
  auto it = selectors_.find(spec.id);
  if (it == selectors_.end())
    it = selectors_
             .emplace(spec.id,
                      std::make_unique<FixedPlanSelector>(spec.initial_plan))
             .first;
  return *it->second;
}

std::vector<Assignment> TiresiasPolicy::schedule(const SchedulerInput& input) {
  RUBICK_CHECK(input.models != nullptr && input.estimator != nullptr);
  if (bound_store_ != input.models ||
      bound_version_ != input.models->version()) {
    predictor_ = std::make_unique<BestPlanPredictor>(
        *input.cluster, *input.models, *input.estimator);
    bound_store_ = input.models;
    bound_version_ = input.models->version();
  }

  // Integrate attained service since the previous round (running jobs only;
  // the launch/restart pauses inside a round are ignored — an upper bound
  // exactly like Tiresias' own accounting of occupied GPUs).
  for (const auto& v : input.jobs) {
    const int id = v.spec->id;
    double& last = last_seen_s_.try_emplace(id, input.now).first->second;
    if (v.running)
      attained_gpu_s_[id] +=
          (input.now - last) * v.placement.total_gpus();
    last = input.now;
  }

  // Priority order: high queue (attained < threshold) before low queue,
  // FCFS by submission inside each queue.
  std::vector<const JobView*> order;
  for (const auto& v : input.jobs) order.push_back(&v);
  auto attained = [&](const JobView* v) {
    auto it = attained_gpu_s_.find(v->spec->id);
    return it == attained_gpu_s_.end() ? 0.0 : it->second;
  };
  std::sort(order.begin(), order.end(),
            [&](const JobView* a, const JobView* b) {
              const bool ha = attained(a) < threshold_;
              const bool hb = attained(b) < threshold_;
              if (ha != hb) return ha;
              return a->spec->submit_time_s < b->spec->submit_time_s;
            });

  // Rebuild the allocation from scratch in priority order (preemptive LAS):
  // each job takes its full request or waits.
  AllocState state(*input.cluster, {}, input.down_nodes);
  std::map<int, ExecutionPlan> chosen;
  for (const JobView* v : order) {
    const JobSpec& spec = *v->spec;
    const int cpu_per_gpu = std::max(
        1, (spec.requested.cpus + spec.requested.gpus - 1) /
               spec.requested.gpus);
    const int chunk = std::max(1, spec.initial_plan.tp);
    // Keep a running job's existing placement when it still fits — avoids
    // gratuitous checkpoint-resume churn between identical rounds.
    if (v->running) {
      bool fits = true;
      for (const auto& s : v->placement.slices)
        if (state.free_gpus(s.node) < s.gpus ||
            state.free_cpus(s.node) < s.cpus)
          fits = false;
      if (fits) {
        for (const auto& s : v->placement.slices) {
          state.take_gpus(spec.id, s.node, s.gpus);
          state.take_cpus(spec.id, s.node, s.cpus);
        }
        if (state.alloc_memory(spec.id, find_model(spec.model_name),
                               v->plan, spec.global_batch,
                               *input.estimator)) {
          chosen[spec.id] = v->plan;
          continue;
        }
        state.release_job(spec.id);
      }
    }
    if (!pack_job(state, *input.cluster, spec.id, spec.requested.gpus,
                  cpu_per_gpu, chunk))
      continue;
    if (!commit_job_plan(state, *predictor_, *input.estimator, *input.models,
                         *input.cluster, *v, selector_for(spec), chosen)) {
      state.release_job(spec.id);
      chosen.erase(spec.id);
    }
  }

  return emit_assignments(state, input, chosen, provenance(), name());
}

}  // namespace rubick
