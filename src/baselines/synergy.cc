#include "baselines/synergy.h"
#include "baselines/common.h"
#include "cluster/placement.h"
#include "core/alloc_state.h"
#include "core/predictor.h"
#include "model/model_spec.h"
#include "plan/execution_plan.h"
#include "trace/job.h"

#include <algorithm>

#include "common/error.h"
#include "model/model_zoo.h"

namespace rubick {

const PlanSelector& SynergyPolicy::selector_for(const JobSpec& spec) {
  auto it = selectors_.find(spec.id);
  if (it == selectors_.end())
    it = selectors_
             .emplace(spec.id,
                      std::make_unique<FixedPlanSelector>(spec.initial_plan))
             .first;
  return *it->second;
}

std::vector<Assignment> SynergyPolicy::schedule(const SchedulerInput& input) {
  RUBICK_CHECK(input.models != nullptr && input.estimator != nullptr);
  if (bound_store_ != input.models ||
      bound_version_ != input.models->version()) {
    // Rebind (and drop prediction caches) when the store was swapped or a
    // model was refitted online.
    predictor_ = std::make_unique<BestPlanPredictor>(
        *input.cluster, *input.models, *input.estimator);
    bound_store_ = input.models;
    bound_version_ = input.models->version();
  }

  std::vector<std::pair<int, Placement>> running;
  for (const auto& v : input.jobs)
    if (v.running) running.emplace_back(v.spec->id, v.placement);
  AllocState state(*input.cluster, running, input.down_nodes);

  std::map<int, ExecutionPlan> chosen;
  for (const auto& v : input.jobs)
    if (v.running) chosen[v.spec->id] = v.plan;

  // Pending jobs FCFS with backfill. Running jobs are never touched.
  std::vector<const JobView*> pending;
  for (const auto& v : input.jobs)
    if (!v.running) pending.push_back(&v);
  std::sort(pending.begin(), pending.end(),
            [](const JobView* a, const JobView* b) {
              return a->queued_since < b->queued_since;
            });

  for (const JobView* v : pending) {
    const JobSpec& spec = *v->spec;
    const ModelSpec& model = find_model(spec.model_name);
    const PlanSelector& sel = selector_for(spec);
    const int id = spec.id;
    const int chunk = std::max(1, spec.initial_plan.tp);

    // CPU-sensitive jobs get above-proportional cores; the rest get the
    // input-pipeline floor (Synergy's core idea: disproportionate
    // CPU/memory allocation driven by per-job sensitivity).
    const int g = spec.requested.gpus;
    const bool cpu_sensitive =
        predictor_->cpu_slope_up(model, spec.global_batch, sel, g,
                                 std::max(1, 2 * g)) > 1e-6;
    const int cpu_per_gpu = cpu_sensitive ? 8 : 2;

    const auto snap = state.snapshot();
    bool ok = pack_job(state, *input.cluster, id, g, cpu_per_gpu, chunk);
    if (!ok && cpu_sensitive) {
      // Not enough spare cores for the boosted share: fall back to floor.
      ok = pack_job(state, *input.cluster, id, g, 2, chunk);
    }
    if (ok)
      ok = commit_job_plan(state, *predictor_, *input.estimator, *input.models,
                           *input.cluster, *v, sel, chosen);
    if (!ok) {
      state.restore(snap);
      chosen.erase(id);
      continue;  // backfill: try the next queued job
    }
  }

  return emit_assignments(state, input, chosen, provenance(), name());
}

}  // namespace rubick
