// PolicyFactory (ISSUE 6): one registry mapping policy names to
// constructed `SchedulerPolicy` instances, shared by every tool and bench
// binary — the copy-pasted if/else policy-selection blocks live here now,
// once.
//
// Registered names: rubick, rubick-e (plans only), rubick-r (resources
// only), rubick-n (neither), sia, synergy, antman, tiresias, equal-share.
// Unknown names throw InvariantError listing the valid ones, so a CLI typo
// fails with an actionable message instead of a silent default.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/decide_index.h"
#include "core/scheduler.h"

namespace rubick {

// The subset of policy knobs the binaries expose. Every policy receives the
// same params object and reads what it understands; defaults reproduce the
// paper's configuration.
struct PolicyParams {
  // GPU quota per tenant for guaranteed jobs (Rubick/AntMan); empty = no
  // quotas.
  std::map<std::string, int> tenant_quota_gpus;
  double gate_threshold = 0.97;        // Rubick reconfiguration-penalty gate
  bool opportunistic_admission = true; // Rubick small-start admission
  // Decide-phase implementation for the Rubick family (byte-identical
  // either way; legacy-scan exists for bisection and measurement —
  // `rubick_simulate --decide=legacy-scan`).
  DecideEngine decide_engine = DecideEngine::kIndexed;
};

class PolicyFactory {
 public:
  using Builder =
      std::function<std::unique_ptr<SchedulerPolicy>(const PolicyParams&)>;

  // Process-wide instance with all built-in policies registered.
  static const PolicyFactory& global();

  // Constructs a fresh policy (policies are single-run objects). Throws
  // InvariantError on an unknown name, listing the registered ones.
  std::unique_ptr<SchedulerPolicy> create(const std::string& name,
                                          const PolicyParams& params = {})
      const;

  bool known(const std::string& name) const;
  // Registered names, sorted; handy for --help strings and sweeps.
  std::vector<std::string> names() const;

  // True for rubick / rubick-e / rubick-r / rubick-n — the policies that
  // make the Algorithm-1 guarantee (auditors enable check_guarantee on
  // them).
  static bool rubick_family(const std::string& name);

 private:
  PolicyFactory();

  std::map<std::string, Builder> builders_;
};

}  // namespace rubick
