// Sia baseline (Jayaram Subramanya et al., SOSP'23), as modelled in the
// paper's evaluation (§7.3):
//   * adapts GPU counts only along the data-parallel dimension — a job whose
//     initial plan is DP-family (ZeRO/GA/GC included) is scaled by changing
//     its DP size; a job with a 3D-parallel initial plan cannot be scaled
//     and falls back to its fixed plan and fixed GPU count;
//   * allocates GPUs by greedy goodput water-filling (normalized marginal
//     speedup per GPU);
//   * ignores multi-resource allocation beyond GPUs (CPUs pinned at 2/GPU).
#pragma once

#include "core/predictor.h"
#include "perf/perf_store.h"
#include "trace/job.h"

#include <map>
#include <memory>

#include "core/plan_selector.h"
#include "core/scheduler.h"

namespace rubick {

class SiaPolicy final : public SchedulerPolicy {
 public:
  explicit SiaPolicy(double gate_threshold = 0.97)
      : gate_threshold_(gate_threshold) {}

  std::string name() const override { return "Sia"; }
  std::vector<Assignment> schedule(const SchedulerInput& input) override;

 private:
  const PlanSelector& selector_for(const JobSpec& spec);

  double gate_threshold_;
  std::unique_ptr<BestPlanPredictor> predictor_;
  const PerfModelStore* bound_store_ = nullptr;
  std::uint64_t bound_version_ = 0;
  std::map<int, std::unique_ptr<PlanSelector>> selectors_;
  std::map<int, double> baseline_cache_;
};

}  // namespace rubick
