#include "baselines/sia.h"
#include "baselines/common.h"
#include "cluster/placement.h"
#include "core/alloc_state.h"
#include "core/predictor.h"
#include "model/model_spec.h"
#include "perf/analytic.h"
#include "perf/fitter.h"
#include "plan/execution_plan.h"
#include "trace/job.h"

#include <algorithm>

#include "common/error.h"
#include "model/model_zoo.h"
#include "perf/profiler.h"

namespace rubick {

const PlanSelector& SiaPolicy::selector_for(const JobSpec& spec) {
  auto it = selectors_.find(spec.id);
  if (it == selectors_.end()) {
    std::unique_ptr<PlanSelector> sel;
    if (spec.initial_plan.tp == 1 && spec.initial_plan.pp == 1)
      sel = std::make_unique<ScaledDpSelector>(spec.initial_plan);
    else
      sel = std::make_unique<FixedPlanSelector>(spec.initial_plan);
    it = selectors_.emplace(spec.id, std::move(sel)).first;
  }
  return *it->second;
}

std::vector<Assignment> SiaPolicy::schedule(const SchedulerInput& input) {
  RUBICK_CHECK(input.models != nullptr && input.estimator != nullptr);
  if (bound_store_ != input.models ||
      bound_version_ != input.models->version()) {
    // Rebind (and drop prediction caches) when the store was swapped or a
    // model was refitted online.
    predictor_ = std::make_unique<BestPlanPredictor>(
        *input.cluster, *input.models, *input.estimator);
    bound_store_ = input.models;
    bound_version_ = input.models->version();
  }

  struct Info {
    const JobView* view;
    const ModelSpec* model;
    const PlanSelector* selector;
    bool scalable;   // DP-family initial plan
    bool frozen;
    double baseline;
    int shard;       // tp * pp of the initial plan (allocation granularity)
    int target = 0;  // water-filled GPU target
  };

  std::vector<Info> infos;
  std::vector<std::pair<int, Placement>> running;
  for (const auto& v : input.jobs) {
    Info info;
    info.view = &v;
    info.model = &find_model(v.spec->model_name);
    info.selector = &selector_for(*v.spec);
    info.scalable = v.spec->initial_plan.tp == 1 && v.spec->initial_plan.pp == 1;
    info.shard = v.spec->initial_plan.tp * v.spec->initial_plan.pp;
    const double T = v.total_active_time_s;
    const double nd = (v.reconfig_count + 1) * input.reconfig_penalty_s;
    info.frozen =
        v.running && (T <= 0.0 || (T - nd) / T < gate_threshold_);
    auto bit = baseline_cache_.find(v.spec->id);
    if (bit == baseline_cache_.end()) {
      const PerfModel& perf = input.models->get(v.spec->model_name);
      const PerfContext ctx = make_perf_context(
          *input.cluster, v.spec->requested.gpus, v.spec->requested.cpus);
      double thr = 1e-9;
      if (v.spec->initial_plan.valid_for(*info.model, v.spec->global_batch))
        thr = perf.predict_throughput(*info.model, v.spec->initial_plan,
                                      v.spec->global_batch, ctx);
      bit = baseline_cache_.emplace(v.spec->id, thr).first;
    }
    info.baseline = bit->second;
    if (v.running) running.emplace_back(v.spec->id, v.placement);
    infos.push_back(info);
  }

  AllocState state(*input.cluster, running, input.down_nodes);
  std::map<int, ExecutionPlan> chosen;
  for (const auto& info : infos)
    if (info.view->running)
      chosen[info.view->spec->id] = info.view->plan;

  // Frozen jobs keep their allocation; everything else is re-derived from a
  // clean slate (Sia re-solves its allocation every round).
  int free_gpus = 0;
  for (auto& info : infos) {
    if (info.view->running && !info.frozen) {
      state.release_job(info.view->spec->id);
      chosen.erase(info.view->spec->id);
    }
  }
  for (int n = 0; n < input.cluster->num_nodes; ++n)
    free_gpus += state.free_gpus(n);

  auto env = [&](const Info& info, int g) {
    return predictor_->envelope(*info.model, info.view->spec->global_batch,
                                *info.selector, g, std::max(1, 2 * g));
  };

  // Pollux-style statistical efficiency: scaling the DP size beyond the
  // requested one means scaling the effective batch, and each sample then
  // contributes less toward the accuracy target (the paper evaluates Sia
  // against time-to-accuracy). Sia optimizes goodput = throughput x
  // efficiency and pays this factor at execution time; Rubick never does
  // (it keeps the global batch fixed by design).
  auto efficiency = [](const Info& info, int gpus) {
    const int d0 = std::max(1, info.view->spec->initial_plan.dp);
    const int d = std::max(1, gpus / std::max(1, info.shard));
    if (d <= d0) return 1.0;
    const double noise = info.view->spec->grad_noise_rel;
    const double r = static_cast<double>(d) / d0;
    return (noise + 1.0) / (noise + r);
  };

  // --- Greedy goodput water-filling over whole DP shards. ---
  while (free_gpus > 0) {
    Info* best = nullptr;
    double best_gain = 0.0;
    int best_step = 0;
    for (auto& info : infos) {
      if (info.frozen) continue;
      if (info.scalable) {
        // Step to the next GPU count where the envelope actually rises (the
        // curve can be flat over infeasible DP sizes, e.g. a large model
        // whose smallest feasible ZeRO-DP size is 2).
        const double here =
            env(info, info.target) * efficiency(info, info.target);
        int step = info.shard;  // == 1 for DP-family
        double there = here;
        while (step <= free_gpus) {
          there = env(info, info.target + step) *
                  efficiency(info, info.target + step);
          if (there > here + 1e-12) break;
          step += info.shard;
        }
        if (step > free_gpus || there <= here + 1e-12) continue;
        const double gain = (there - here) / (info.baseline * step);
        if (gain > best_gain + 1e-12) {
          best_gain = gain;
          best = &info;
          best_step = step;
        }
      } else if (info.target == 0) {
        const int need = info.view->spec->requested.gpus;
        if (need > free_gpus) continue;
        const double gain = env(info, need) / (info.baseline * need);
        if (gain > best_gain + 1e-12) {
          best_gain = gain;
          best = &info;
          best_step = need;
        }
      }
    }
    if (best == nullptr) break;
    best->target += best_step;
    free_gpus -= best_step;
  }

  // --- Place targets (largest first), then pick the scaled plan. ---
  std::vector<Info*> order;
  for (auto& info : infos)
    if (!info.frozen && info.target > 0) order.push_back(&info);
  std::sort(order.begin(), order.end(),
            [](const Info* a, const Info* b) { return a->target > b->target; });

  for (Info* info : order) {
    const int id = info->view->spec->id;
    int target = info->target;
    const int chunk = std::max(1, info->view->spec->initial_plan.tp);
    while (target >= info->shard && target > 0) {
      if (pack_job(state, *input.cluster, id, target, 2, chunk) &&
          commit_job_plan(state, *predictor_, *input.estimator, *input.models,
                          *input.cluster, *info->view, *info->selector,
                          chosen)) {
        break;
      }
      state.release_job(id);
      chosen.erase(id);
      if (!info->scalable) break;  // all-or-nothing for fixed plans
      target -= info->shard;       // fragmentation: try one shard fewer
    }
  }

  std::vector<Assignment> out =
      emit_assignments(state, input, chosen, provenance(), name());
  for (auto& a : out) {
    for (const auto& info : infos) {
      if (info.view->spec->id != a.job_id) continue;
      if (info.scalable)
        a.statistical_efficiency =
            efficiency(info, a.placement.total_gpus());
      break;
    }
  }
  return out;
}

}  // namespace rubick
