// Tiresias-style baseline (Gu et al., NSDI'19) — one of the classic
// JCT-minimizing DL schedulers the paper positions against (§8).
//
// Discretized Least-Attained-Service: jobs are prioritized by how little
// GPU-service (GPU x seconds) they have consumed so far, so short jobs
// finish quickly without knowing durations in advance. Like the other
// black-box baselines it never reconfigures: every job runs its submitted
// plan on its requested GPUs, and lower-priority (high-attained-service)
// jobs are preempted when higher-priority ones arrive. Two-queue
// discretization follows the paper's spirit: jobs under the service
// threshold form the high-priority queue, the rest the low-priority one,
// FCFS inside each.
#pragma once

#include "core/predictor.h"
#include "perf/perf_store.h"
#include "trace/job.h"

#include <map>
#include <memory>

#include "core/plan_selector.h"
#include "core/scheduler.h"

namespace rubick {

class TiresiasPolicy final : public SchedulerPolicy {
 public:
  // Jobs below `queue_threshold_gpu_s` of attained GPU-service stay in the
  // high-priority queue (Tiresias' queue demotion threshold).
  explicit TiresiasPolicy(double queue_threshold_gpu_s = 8.0 * 3600.0)
      : threshold_(queue_threshold_gpu_s) {}

  std::string name() const override { return "Tiresias"; }
  std::vector<Assignment> schedule(const SchedulerInput& input) override;

 private:
  const PlanSelector& selector_for(const JobSpec& spec);

  double threshold_;
  std::unique_ptr<BestPlanPredictor> predictor_;
  const PerfModelStore* bound_store_ = nullptr;
  std::uint64_t bound_version_ = 0;
  std::map<int, std::unique_ptr<PlanSelector>> selectors_;
  // Attained GPU-service per job, integrated across rounds.
  std::map<int, double> attained_gpu_s_;
  std::map<int, double> last_seen_s_;
};

}  // namespace rubick
