// Cluster substrate: nodes with multi-resource capacity and link speeds.
//
// Default topology mirrors the paper's testbed (§7): 8 servers, each with
// 8 NVIDIA A800-80GB GPUs, 96 vCPUs, 1600 GB host memory, 400 GB/s NVLink
// intra-node, 100 GB/s RDMA inter-node; PCIe Gen4 for GPU<->host staging.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cluster/placement.h"
#include "common/resource.h"
#include "common/units.h"

namespace rubick {

struct NodeSpec {
  int gpus = 8;
  int cpus = 96;
  std::uint64_t memory_bytes = gigabytes(1600);
  std::uint64_t gpu_memory_bytes = gigabytes(80);
};

struct ClusterSpec {
  int num_nodes = 8;
  NodeSpec node;
  // Optional per-node GPU speed factors (relative sustained throughput;
  // 1.0 = the reference A800). Empty means homogeneous. A gang-synchronous
  // job placed across nodes runs at its SLOWEST node's pace, so schedulers
  // should avoid mixing speeds within one job (see speed_of()).
  std::vector<double> node_speed;

  double speed_of(int node_id) const {
    if (node_speed.empty()) return 1.0;
    return node_speed[static_cast<std::size_t>(node_id)];
  }
  bool heterogeneous() const { return !node_speed.empty(); }
  double intra_node_bw_bps = gb_per_s(400);  // NVLink
  // Effective per-flow RDMA bandwidth. The testbed advertises 100 GB/s of
  // aggregate NIC bandwidth per server; a single collective's bottleneck
  // pair sees a fraction of that, and it is that bottleneck the performance
  // model divides by (paper §4.1).
  double inter_node_bw_bps = gb_per_s(12.5);
  double pcie_bw_bps = gb_per_s(25);         // GPU <-> host staging

  int total_gpus() const { return num_nodes * node.gpus; }
};

// Resource bookkeeping for one node.
struct Node {
  int id = 0;
  NodeSpec spec;
  ResourceVector free;

  ResourceVector capacity() const {
    return {spec.gpus, spec.cpus, spec.memory_bytes};
  }
};

// Mutable cluster state: tracks free resources per node, with invariant
// checks that no allocation exceeds capacity and every release matches a
// previous allocation.
class Cluster {
 public:
  explicit Cluster(const ClusterSpec& spec = {});

  const ClusterSpec& spec() const { return spec_; }
  int num_nodes() const { return static_cast<int>(nodes_.size()); }
  const Node& node(int id) const;

  ResourceVector free_total() const;
  ResourceVector capacity_total() const;

  // True iff every slice of `p` fits in the current free resources.
  bool can_allocate(const Placement& p) const;

  // Claims / returns the resources of a placement. Throws InvariantError on
  // violation (the scheduler must never double-book).
  void allocate(const Placement& p);
  void release(const Placement& p);

  std::string to_string() const;

 private:
  ClusterSpec spec_;
  std::vector<Node> nodes_;
};

}  // namespace rubick
