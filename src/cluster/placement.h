// Placements: which slice of which node a job occupies.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/resource.h"

namespace rubick {

// A job's share of a single node.
struct NodeSlice {
  int node = 0;
  int gpus = 0;
  int cpus = 0;
  std::uint64_t host_memory_bytes = 0;

  friend bool operator==(const NodeSlice&, const NodeSlice&) = default;
};

// A placement is the list of node slices a job runs on. Slices are unique
// per node and sorted by node id (canonical form maintained by add()).
struct Placement {
  std::vector<NodeSlice> slices;

  // Merges into an existing slice for the node if present.
  void add(const NodeSlice& slice);

  ResourceVector total() const;
  int total_gpus() const;
  int total_cpus() const;
  std::uint64_t total_host_memory() const;

  int num_nodes() const { return static_cast<int>(slices.size()); }
  bool multi_node() const { return slices.size() > 1; }
  bool empty() const { return slices.empty(); }

  // Smallest per-node GPU count among used nodes — the upper bound for a
  // tensor-parallel group (TP stays inside a node).
  int min_slice_gpus() const;

  std::string to_string() const;

  friend bool operator==(const Placement&, const Placement&) = default;
};

}  // namespace rubick
