#include "cluster/cluster.h"

#include <sstream>

#include "common/error.h"

namespace rubick {

Cluster::Cluster(const ClusterSpec& spec) : spec_(spec) {
  RUBICK_CHECK(spec.num_nodes > 0);
  RUBICK_CHECK_MSG(spec.node_speed.empty() ||
                       spec.node_speed.size() ==
                           static_cast<std::size_t>(spec.num_nodes),
                   "node_speed must be empty or have one entry per node");
  for (double s : spec.node_speed) RUBICK_CHECK(s > 0.0);
  nodes_.reserve(static_cast<std::size_t>(spec.num_nodes));
  for (int i = 0; i < spec.num_nodes; ++i) {
    Node n;
    n.id = i;
    n.spec = spec.node;
    n.free = n.capacity();
    nodes_.push_back(n);
  }
}

const Node& Cluster::node(int id) const {
  RUBICK_CHECK_MSG(id >= 0 && id < num_nodes(), "bad node id " << id);
  return nodes_[static_cast<std::size_t>(id)];
}

ResourceVector Cluster::free_total() const {
  ResourceVector rv;
  for (const auto& n : nodes_) rv += n.free;
  return rv;
}

ResourceVector Cluster::capacity_total() const {
  ResourceVector rv;
  for (const auto& n : nodes_) rv += n.capacity();
  return rv;
}

bool Cluster::can_allocate(const Placement& p) const {
  for (const auto& s : p.slices) {
    if (s.node < 0 || s.node >= num_nodes()) return false;
    const ResourceVector want{s.gpus, s.cpus, s.host_memory_bytes};
    if (!want.fits_within(nodes_[static_cast<std::size_t>(s.node)].free))
      return false;
  }
  return true;
}

void Cluster::allocate(const Placement& p) {
  RUBICK_CHECK_MSG(can_allocate(p),
                   "allocation exceeds free resources: " << p.to_string());
  for (const auto& s : p.slices)
    nodes_[static_cast<std::size_t>(s.node)].free -=
        ResourceVector{s.gpus, s.cpus, s.host_memory_bytes};
}

void Cluster::release(const Placement& p) {
  for (const auto& s : p.slices) {
    RUBICK_CHECK(s.node >= 0 && s.node < num_nodes());
    Node& n = nodes_[static_cast<std::size_t>(s.node)];
    n.free += ResourceVector{s.gpus, s.cpus, s.host_memory_bytes};
    RUBICK_CHECK_MSG(n.free.fits_within(n.capacity()),
                     "release overflows node " << s.node << " capacity");
  }
}

std::string Cluster::to_string() const {
  std::ostringstream os;
  os << "Cluster(" << num_nodes() << " nodes; free:";
  for (const auto& n : nodes_) os << " n" << n.id << "=" << n.free.to_string();
  os << ")";
  return os.str();
}

}  // namespace rubick
