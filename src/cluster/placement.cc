#include "cluster/placement.h"

#include <algorithm>
#include <sstream>

#include "common/error.h"
#include "common/units.h"

namespace rubick {

void Placement::add(const NodeSlice& slice) {
  RUBICK_DCHECK(slice.gpus >= 0 && slice.cpus >= 0);
  auto it = std::find_if(slices.begin(), slices.end(),
                         [&](const NodeSlice& s) { return s.node == slice.node; });
  if (it != slices.end()) {
    it->gpus += slice.gpus;
    it->cpus += slice.cpus;
    it->host_memory_bytes += slice.host_memory_bytes;
  } else {
    slices.push_back(slice);
    std::sort(slices.begin(), slices.end(),
              [](const NodeSlice& a, const NodeSlice& b) {
                return a.node < b.node;
              });
  }
}

ResourceVector Placement::total() const {
  ResourceVector rv;
  for (const auto& s : slices) {
    rv.gpus += s.gpus;
    rv.cpus += s.cpus;
    rv.memory_bytes += s.host_memory_bytes;
  }
  return rv;
}

int Placement::total_gpus() const { return total().gpus; }
int Placement::total_cpus() const { return total().cpus; }
std::uint64_t Placement::total_host_memory() const {
  return total().memory_bytes;
}

int Placement::min_slice_gpus() const {
  int m = 0;
  for (const auto& s : slices) {
    if (s.gpus == 0) continue;
    m = (m == 0) ? s.gpus : std::min(m, s.gpus);
  }
  return m;
}

std::string Placement::to_string() const {
  std::ostringstream os;
  os << "[";
  for (std::size_t i = 0; i < slices.size(); ++i) {
    const auto& s = slices[i];
    os << "n" << s.node << ":{g=" << s.gpus << ",c=" << s.cpus
       << ",m=" << to_gigabytes(s.host_memory_bytes) << "GB}";
    if (i + 1 < slices.size()) os << ", ";
  }
  os << "]";
  return os.str();
}

}  // namespace rubick
