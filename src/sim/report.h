// Reporting helpers for simulation results: per-job CSV export and an
// aligned summary block. Shared by the CLI tool, examples and benches so a
// SimResult is rendered identically everywhere.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>

#include "sim/simulator.h"

namespace rubick {

// One line per job:
//   job_id,model,guaranteed,requested_gpus,submit_h,start_h,finish_h,jct_h,
//   reconfigs,achieved_thr,baseline_thr
void write_results_csv(std::ostream& os, const SimResult& result);
void write_results_csv_file(const std::string& path, const SimResult& result);

// Scheduler-internal statistics surfaced next to the run summary:
// predictor memo-cache behaviour and thread-pool occupancy (PR-1's
// parallel curve engine). Fill from RubickPolicy::cache_stats() and
// ThreadPool::stats(); fields left at zero are omitted from the output.
struct SchedulerInternals {
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t cache_inserts = 0;
  std::uint64_t pool_tasks = 0;
  std::uint64_t pool_parallel_for_calls = 0;
  double pool_busy_s = 0.0;
  int pool_threads = 0;
};

// Human-readable run summary: JCT percentiles, makespan, reconfiguration
// and refit counts, average utilization with a sparkline. When `internals`
// is non-null, appends predictor cache hit rates and pool occupancy.
void print_summary(std::ostream& os, const std::string& policy_name,
                   const SimResult& result,
                   const SchedulerInternals* internals = nullptr);

// Just the "thread pool" occupancy line (no-op when the pool fields are
// zero). The global pool's statistics are process-cumulative, so a
// multi-seed sweep prints this once at the end rather than per seed block —
// per-seed output stays byte-identical to running each seed alone.
void print_pool_stats(std::ostream& os, const SchedulerInternals& internals);

// The reconfiguration timeline of one job: each configuration it ran with
// (time, GPUs, plan, measured rate). For policy debugging.
void print_job_history(std::ostream& os, const JobResult& job);

}  // namespace rubick
