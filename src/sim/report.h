// Reporting helpers for simulation results: per-job CSV export and an
// aligned summary block. Shared by the CLI tool, examples and benches so a
// SimResult is rendered identically everywhere.
#pragma once

#include <iosfwd>
#include <string>

#include "sim/simulator.h"

namespace rubick {

// One line per job:
//   job_id,model,guaranteed,requested_gpus,submit_h,start_h,finish_h,jct_h,
//   reconfigs,achieved_thr,baseline_thr
void write_results_csv(std::ostream& os, const SimResult& result);
void write_results_csv_file(const std::string& path, const SimResult& result);

// Human-readable run summary: JCT percentiles, makespan, reconfiguration
// and refit counts, average utilization with a sparkline.
void print_summary(std::ostream& os, const std::string& policy_name,
                   const SimResult& result);

// The reconfiguration timeline of one job: each configuration it ran with
// (time, GPUs, plan, measured rate). For policy debugging.
void print_job_history(std::ostream& os, const JobResult& job);

}  // namespace rubick
