// Discrete-event cluster simulator (paper §7.4).
//
// Replays a job trace against a scheduling policy. Job progress advances at
// ground-truth oracle throughput for the assigned (placement, plan); every
// assignment change costs the checkpoint-resume reconfiguration penalty
// delta (78 s measured in the paper); the first job of each model type waits
// for the profiling run before it can be scheduled.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "common/stats.h"
#include "core/audit.h"
#include "core/scheduler.h"
#include "failure/fault_plan.h"
#include "perf/oracle.h"
#include "perf/perf_store.h"
#include "plan/execution_plan.h"
#include "telemetry/timeline.h"
#include "trace/job.h"

namespace rubick {

// Which event-loop implementation drives the run (DESIGN.md §13).
// `kIndexed` (default) is the production engine: a versioned lazy-deletion
// min-heap of typed events plus incremental running/active/node indexes,
// O(affected jobs) per tick. `kLegacyScan` is the pre-engine full-fleet
// scan loop, kept as the byte-identical reference implementation for the
// engine-vs-legacy differential test and for bisecting engine regressions.
// Both produce the same SimResult, decision log and golden trace, bit for
// bit — pinned by tests/test_sim_engine.cc.
enum class SimEngine { kIndexed, kLegacyScan };

struct SimOptions {
  double reconfig_penalty_s = 78.0;  // delta: checkpoint + resume
  double launch_delay_s = 30.0;      // cold start of a new/previously queued job
  // When true, the checkpoint-resume penalty scales with model size instead
  // of the flat 78 s: launch_delay + full training state (16 bytes/param)
  // written+read at checkpoint_bw_bps. A 1.5B model then costs ~35 s and a
  // 30B model ~126 s — the flat figure is their traffic-weighted average.
  bool size_dependent_reconfig_cost = false;
  double checkpoint_bw_bps = 5e9;
  bool charge_profiling = true;      // first job of a model type waits for fit
  // When true, jobs progress at the *fitted model's* predicted throughput
  // instead of the oracle's measured one — a pure model-driven simulation.
  // Comparing both modes is this repo's analog of the paper's §7.4
  // simulator-fidelity check (max 6.9% avg-JCT replay error).
  bool advance_with_fitted_model = false;
  // Online model refinement (paper §4.3): every live throughput measurement
  // is fed back to the PerfModelStore, which refits when prediction error
  // exceeds its threshold. The store the caller passes is copied; the
  // refined copy drives scheduling within this run.
  bool online_refinement = true;
  double max_sim_time_s = 60.0 * 24.0 * 3600.0;  // runaway guard
  SimEngine engine = SimEngine::kIndexed;
};

// How the simulator (and through it, every policy) reacts to injected
// faults. Irrelevant — and unread — when the run carries no fault plan.
struct FailurePolicyOptions {
  // A job whose reconfiguration attempt failed retries with capped
  // exponential backoff: attempt k waits base * 2^(k-1), clamped to cap.
  int max_reconfig_retries = 4;      // consecutive failures before degrading
  double retry_backoff_base_s = 30.0;
  double retry_backoff_cap_s = 480.0;
  // Extra restart latency charged when a job is evicted by a node crash or
  // GPU fault (checkpoint restore from the last good snapshot); matches the
  // paper's delta by default.
  double crash_restore_cost_s = 78.0;
};

// The one bundle of simulation knobs (ISSUE 6): core event-loop options
// plus failure handling. `RunContext::options` points at one of these
// instead of Simulator::run growing positional parameters.
struct SimulationOptions {
  SimOptions sim;
  FailurePolicyOptions failure;

  // Throws InvariantError with an actionable message on nonsense values.
  void validate() const;
};

// One (re)configuration a job ran with: from `since_s` until the next
// entry (or completion), on `gpus` GPUs with `plan`.
struct AssignmentRecord {
  double since_s = 0.0;
  int gpus = 0;
  int cpus = 0;
  ExecutionPlan plan;
  double throughput = 0.0;  // oracle samples/s of this configuration
};

struct JobResult {
  JobSpec spec;
  bool finished = false;
  // --- Fault accounting (all zero in fault-free runs). ---
  int crash_restarts = 0;      // evictions by node crash / GPU transient
  int reconfig_failures = 0;   // failed reconfiguration attempts, total
  bool degraded = false;       // ended the run pinned to last-known-good
  // Every configuration the job ran with, in order (first entry is the
  // initial launch; later entries are reconfigurations / resumptions).
  std::vector<AssignmentRecord> history;
  double first_start_s = -1.0;
  double finish_s = -1.0;
  double jct_s = 0.0;
  int reconfig_count = 0;
  double total_active_time_s = 0.0;
  double gpu_seconds = 0.0;          // integrated gpus x active seconds
  // Throughput the job would sustain with (requested resources, initial
  // plan) per the oracle — the SLA baseline.
  double baseline_throughput = 0.0;
  // Average achieved rate over the whole residency (finish - first start).
  double achieved_throughput = 0.0;
};

struct SimResult {
  std::vector<JobResult> jobs;
  double makespan_s = 0.0;
  int scheduling_rounds = 0;
  double reconfig_overhead_gpu_seconds = 0.0;
  double total_gpu_seconds = 0.0;
  int online_refits = 0;  // performance-model refits triggered by live data
  // --- Fault accounting (all zero in fault-free runs). ---
  int fault_node_crashes = 0;
  int fault_gpu_transients = 0;
  int fault_straggler_episodes = 0;
  int fault_reconfig_failures = 0;  // injected reconfiguration aborts
  int crash_restarts = 0;           // job evictions caused by node faults
  int degraded_jobs = 0;            // jobs that ended the run degraded
  // Utilization / queue time series sampled at every scheduling event.
  ClusterTimeline timeline;

  bool any_faults() const {
    return fault_node_crashes + fault_gpu_transients +
               fault_straggler_episodes + fault_reconfig_failures >
           0;
  }

  Summary jct_summary() const;
  Summary jct_summary_where(bool guaranteed) const;  // filter by class
  double avg_jct_s() const { return jct_summary().mean; }
};

// Per-run inputs that are not part of the simulator's fixed configuration.
// `store` optionally carries a pre-fitted PerfModelStore shared across runs
// (e.g. one fit reused by every policy of a benchmark); when null the
// simulator profiles and fits from the oracle itself. `profiling_cost_s`
// optionally carries the per-model profiling cost charged to the first job
// of each model type (models missing from it cost the 210 s default).
// `observer` optionally watches the run tick by tick (see core/audit.h);
// the InvariantAuditor in src/check plugs in here. `options`, when set,
// overrides the Simulator's constructor-time SimOptions and supplies the
// failure-handling knobs; `fault_plan`, when set and non-empty, injects its
// fault schedule into the run. Both are validated by `validate()` before
// the event loop starts.
struct RunContext {
  const PerfModelStore* store = nullptr;
  const std::map<std::string, double>* profiling_cost_s = nullptr;
  SimObserver* observer = nullptr;
  const SimulationOptions* options = nullptr;
  const FaultPlan* fault_plan = nullptr;

  // Checks the context against `cluster` (fault events must name real
  // nodes, knobs must be sane). Throws InvariantError with a message that
  // says which knob is wrong and what a legal value looks like. run() calls
  // this itself; it is public so tools can validate flags up front.
  void validate(const ClusterSpec& cluster) const;
};

// CONCURRENCY: run() is const and keeps all mutable state on its stack, so
// one Simulator instance can execute several runs from different threads at
// once (the sweep runner does). The policy is per-run mutable state — never
// share a SchedulerPolicy instance between concurrent runs.
class Simulator {
 public:
  Simulator(const ClusterSpec& cluster, const GroundTruthOracle& oracle,
            SimOptions options = {});

  // Runs the trace to completion under the policy.
  SimResult run(const std::vector<JobSpec>& jobs, SchedulerPolicy& policy,
                const RunContext& ctx = {}) const;

 private:
  ClusterSpec cluster_spec_;
  const GroundTruthOracle* oracle_;
  SimOptions options_;
};

}  // namespace rubick
