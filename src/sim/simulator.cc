#include "sim/simulator.h"

#include "cluster/placement.h"
#include "model/model_spec.h"
#include "perf/analytic.h"
#include "perf/fitter.h"
#include "plan/execution_plan.h"
#include "plan/memory_estimator.h"
#include "sim/event_engine.h"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <unordered_map>

#include "common/error.h"
#include "common/log.h"
#include "model/model_zoo.h"
#include "perf/profiler.h"
#include "telemetry/metrics.h"

namespace rubick {

Summary SimResult::jct_summary() const {
  std::vector<double> jcts;
  jcts.reserve(jobs.size());
  for (const auto& j : jobs)
    if (j.finished) jcts.push_back(j.jct_s);
  return summarize(jcts);
}

Summary SimResult::jct_summary_where(bool guaranteed) const {
  std::vector<double> jcts;
  for (const auto& j : jobs)
    if (j.finished && j.spec.guaranteed == guaranteed)
      jcts.push_back(j.jct_s);
  return summarize(jcts);
}

void SimulationOptions::validate() const {
  RUBICK_CHECK_MSG(sim.reconfig_penalty_s >= 0.0 && sim.launch_delay_s >= 0.0,
                   "SimulationOptions: reconfig_penalty_s and launch_delay_s "
                   "are latencies in seconds and cannot be negative");
  RUBICK_CHECK_MSG(sim.checkpoint_bw_bps > 0.0,
                   "SimulationOptions: checkpoint_bw_bps must be > 0 (got "
                       << sim.checkpoint_bw_bps
                       << "); size-dependent reconfiguration cost divides "
                          "by it");
  RUBICK_CHECK_MSG(sim.max_sim_time_s > 0.0,
                   "SimulationOptions: max_sim_time_s must be > 0");
  RUBICK_CHECK_MSG(failure.max_reconfig_retries >= 0,
                   "FailurePolicyOptions: max_reconfig_retries must be >= 0 "
                   "(0 degrades a job on its first failed reconfiguration)");
  RUBICK_CHECK_MSG(
      failure.retry_backoff_base_s > 0.0 &&
          failure.retry_backoff_cap_s >= failure.retry_backoff_base_s,
      "FailurePolicyOptions: retry backoff needs base > 0 and cap >= base; "
      "got base=" << failure.retry_backoff_base_s
                  << " cap=" << failure.retry_backoff_cap_s);
  RUBICK_CHECK_MSG(failure.crash_restore_cost_s >= 0.0,
                   "FailurePolicyOptions: crash_restore_cost_s is a latency "
                   "in seconds and cannot be negative");
}

void RunContext::validate(const ClusterSpec& cluster) const {
  if (options != nullptr) options->validate();
  if (fault_plan == nullptr) return;
  const double prob = fault_plan->reconfig_failure_prob();
  RUBICK_CHECK_MSG(prob >= 0.0 && prob <= 1.0,
                   "FaultPlan: reconfig_failure_prob is a probability in "
                   "[0, 1]; got " << prob);
  double prev_s = 0.0;
  for (const FaultEvent& e : fault_plan->events()) {
    RUBICK_CHECK_MSG(e.time_s >= 0.0 && e.time_s >= prev_s,
                     "FaultPlan: events must be sorted by nonnegative time "
                     "(event at t=" << e.time_s << " after t=" << prev_s
                                    << "); build plans via "
                                       "FaultPlan::generate/from_events");
    prev_s = e.time_s;
    RUBICK_CHECK_MSG(e.node >= 0 && e.node < cluster.num_nodes,
                     "FaultPlan: event " << to_string(e.kind) << " names node "
                                         << e.node << " but the cluster has "
                                         << cluster.num_nodes
                                         << " nodes (0.."
                                         << cluster.num_nodes - 1 << ")");
    RUBICK_CHECK_MSG(e.duration_s >= 0.0,
                     "FaultPlan: negative duration on " << to_string(e.kind)
                                                        << " at t="
                                                        << e.time_s);
    if (e.kind == FaultKind::kStragglerBegin) {
      RUBICK_CHECK_MSG(e.severity > 0.0 && e.severity <= 1.0,
                       "FaultPlan: straggler severity is a throughput "
                       "multiplier in (0, 1]; got "
                           << e.severity << " at t=" << e.time_s);
    }
  }
}

namespace {

using State = SimJobPhase;

struct SimJob {
  JobSpec spec;
  State state = State::kNotReady;
  double ready_time_s = 0.0;  // submit + profiling gate

  Placement placement;
  ExecutionPlan plan;
  double samples_done = 0.0;
  double throughput = 0.0;
  double pause_until = 0.0;
  double last_advance = 0.0;
  double queued_since = 0.0;
  double first_start = -1.0;
  double finish_time_s = -1.0;
  int reconfig_count = 0;
  double total_active = 0.0;
  double gpu_seconds = 0.0;
  bool ever_ran = false;
  std::vector<AssignmentRecord> history;

  // --- Fault-tolerance state (ISSUE 6); untouched in fault-free runs. ---
  double base_throughput = 0.0;  // pre-straggler rate of the current config
  int reconfig_attempts = 0;     // warm starts attempted (for the fault coin)
  int consecutive_failures = 0;  // resets on a successful warm start
  int total_reconfig_failures = 0;
  int crash_restarts = 0;
  double retry_not_before_s = 0.0;
  bool retry_wake_pending = false;  // a backoff expiry still needs a round
  double pending_restore_cost_s = 0.0;  // checkpoint restore owed at restart
  bool degraded = false;
  bool has_last_good = false;
  ExecutionPlan last_good_plan;

  double remaining() const {
    return std::max(0.0, spec.target_samples - samples_done);
  }
};

constexpr double kEps = 1e-6;

// Completion-heap drift window (DESIGN.md §13.2). A heap entry's key is the
// exact completion estimate at its last (re)push; the legacy loop instead
// recomputes `max(now, pause) + remaining/throughput` every iteration, and
// the two drift apart by accumulated float rounding (bounded well below a
// millisecond over any realistic run — the key is refreshed on every
// examination). To return the bit-exact legacy minimum, the engine pops and
// exactly recomputes every live entry within this window of the best
// candidate before answering; entries further out cannot possibly win.
constexpr double kCompletionSlackS = 1.0;

}  // namespace

Simulator::Simulator(const ClusterSpec& cluster,
                     const GroundTruthOracle& oracle, SimOptions options)
    : cluster_spec_(cluster), oracle_(&oracle), options_(options) {}

SimResult Simulator::run(const std::vector<JobSpec>& jobs,
                         SchedulerPolicy& policy,
                         const RunContext& ctx) const {
  RUBICK_CHECK(!jobs.empty());
  ctx.validate(cluster_spec_);
  // `ctx.options` (the unified SimulationOptions bundle) overrides the
  // constructor-time knobs when present.
  const SimOptions& opts = ctx.options != nullptr ? ctx.options->sim : options_;
  const FailurePolicyOptions failure_opts =
      ctx.options != nullptr ? ctx.options->failure : FailurePolicyOptions{};
  // An empty plan (no events, zero reconfig-failure probability) is treated
  // exactly like no plan: every fault branch below is behind this pointer,
  // so fault-free runs take the pre-ISSUE-6 code path unchanged.
  const FaultPlan* faults =
      ctx.fault_plan != nullptr && !ctx.fault_plan->empty() ? ctx.fault_plan
                                                            : nullptr;
  // Event-engine selection (DESIGN.md §13): `indexed` switches the
  // *iteration strategy* — which jobs each step visits and how the next
  // event time is found — never the per-job mutation math, which both
  // engines share below. That split is what makes the two byte-identical.
  const bool indexed = opts.engine == SimEngine::kIndexed;
  MemoryEstimator estimator;
  Cluster cluster(cluster_spec_);
  // Work on a copy so online refinement never mutates the caller's store
  // (benches share one store across policies and across concurrent runs).
  PerfModelStore store;
  std::map<std::string, double> fitted_costs;
  if (ctx.store != nullptr) {
    store = *ctx.store;
  } else {
    std::vector<std::string> names;
    names.reserve(jobs.size());
    for (const auto& j : jobs) names.push_back(j.model_name);
    store = PerfModelStore::profile_models(
        *oracle_, cluster_spec_, names, /*global_batch_hint=*/0,
        &fitted_costs);
  }
  const std::map<std::string, double>& profiling_cost =
      ctx.profiling_cost_s != nullptr ? *ctx.profiling_cost_s : fitted_costs;

  // --- Initialize jobs; the first job of each model type waits for the
  // profiling run to finish before it becomes schedulable. ---
  std::vector<SimJob> sim_jobs;
  sim_jobs.reserve(jobs.size());
  std::map<std::string, double> model_ready;
  for (const auto& spec : jobs) {
    SimJob sj;
    sj.spec = spec;
    sj.plan = spec.initial_plan;
    double ready = spec.submit_time_s;
    if (opts.charge_profiling) {
      auto it = model_ready.find(spec.model_name);
      if (it == model_ready.end()) {
        auto cost_it = profiling_cost.find(spec.model_name);
        const double cost =
            cost_it != profiling_cost.end() ? cost_it->second : 210.0;
        ready += cost;
        model_ready[spec.model_name] = spec.submit_time_s + cost;
      } else {
        ready = std::max(ready, it->second);
      }
    }
    sj.ready_time_s = ready;
    sim_jobs.push_back(std::move(sj));
  }
  const int num_jobs_total = static_cast<int>(sim_jobs.size());

  SimResult result;
  result.jobs.resize(sim_jobs.size());

  // --- Fault-injection state (inert when `faults` is null). ---
  std::vector<char> node_down(
      static_cast<std::size_t>(cluster_spec_.num_nodes), 0);
  std::vector<double> straggler_factor(
      static_cast<std::size_t>(cluster_spec_.num_nodes), 1.0);
  std::size_t next_fault = 0;  // cursor into faults->events()

  // --- Indexed-engine state (empty and untouched under kLegacyScan). ---
  // Invariants while `indexed`:
  //   running_idx = { j : state == kRunning }, ascending
  //   active_idx  = { j : state == kPending or kRunning }, ascending
  //   node_idx[n] = { j running with a slice on node n }, ascending
  //   busy_gpus_now = sum of placement GPUs over running_idx
  //   finished_count = |{ j : state == kFinished }|
  //   every running job has exactly one live completion entry (version
  //   match); every pending job with retry_wake_pending has exactly one
  //   live backoff entry. Stale entries are dropped lazily on pop.
  EventQueue completions;
  EventQueue backoffs;
  std::vector<std::uint64_t> completion_version(sim_jobs.size(), 0);
  std::vector<std::uint64_t> retry_version(sim_jobs.size(), 0);
  SortedJobIndex running_idx;
  SortedJobIndex active_idx;
  NodeJobIndex node_idx(cluster_spec_.num_nodes);
  std::vector<int> arrival_order;  // pre-sorted arrival cursor
  std::size_t arrival_cursor = 0;
  int finished_count = 0;
  int busy_gpus_now = 0;
  std::vector<int> scratch_jobs;         // reused snapshot of an index
  std::vector<SimEvent> scratch_events;  // completion-query survivors
  if (indexed) {
    arrival_order.resize(sim_jobs.size());
    for (std::size_t i = 0; i < arrival_order.size(); ++i)
      arrival_order[i] = static_cast<int>(i);
    std::sort(arrival_order.begin(), arrival_order.end(),
              [&](int a, int b) {
                const double ra = sim_jobs[static_cast<std::size_t>(a)]
                                      .ready_time_s;
                const double rb = sim_jobs[static_cast<std::size_t>(b)]
                                      .ready_time_s;
                if (ra != rb) return ra < rb;
                return a < b;  // stable job-index tie-break
              });
  }

  // JobSpec id -> array index, for O(1) assignment application. First
  // occurrence wins, matching the legacy linear search on duplicate ids.
  std::unordered_map<int, std::size_t> job_index_by_id;
  job_index_by_id.reserve(sim_jobs.size());
  for (std::size_t i = 0; i < sim_jobs.size(); ++i)
    job_index_by_id.emplace(sim_jobs[i].spec.id, i);
  std::unordered_map<int, const Assignment*> assignment_by_id;  // per round

  // Snapshot arenas (DESIGN.md §13.4): the SchedulerInput handed to the
  // policy and the SimTick handed to observers are rebuilt into these
  // persistent buffers every round instead of reallocating — JobView slots
  // (and the Placement vectors inside them) keep their capacity across
  // rounds. Every field of every slot is reassigned on fill, so the
  // contents are indistinguishable from a freshly built snapshot.
  SchedulerInput input_buf;
  input_buf.cluster = &cluster_spec_;
  input_buf.models = &store;
  input_buf.estimator = &estimator;
  input_buf.reconfig_penalty_s = opts.reconfig_penalty_s;
  input_buf.down_nodes = faults != nullptr ? &node_down : nullptr;
  SimTick tick_buf;
  tick_buf.cluster_state = &cluster;
  tick_buf.down_nodes = faults != nullptr ? &node_down : nullptr;

  if (ctx.observer != nullptr) {
    SimRunInfo info;
    info.cluster = &cluster_spec_;
    info.store = &store;
    info.estimator = &estimator;
    info.jobs = &jobs;
    ctx.observer->on_run_begin(info);
  }

  // --- Engine bookkeeping helpers (no-ops under kLegacyScan). ---

  // Exactly the expression the legacy scan evaluates per running job; the
  // indexed engine calls it when (re)keying a heap entry and when resolving
  // the candidates inside the drift window, so both engines compare the
  // same doubles.
  auto exact_completion_s = [&](const SimJob& sj, double now) {
    const double start = std::max(now, sj.pause_until);
    return start + sj.remaining() / sj.throughput;
  };

  auto push_completion = [&](int j, double now) {
    SimEvent e;
    e.job = j;
    e.kind = SimEventKind::kCompletion;
    e.version = ++completion_version[static_cast<std::size_t>(j)];
    e.time_s = exact_completion_s(sim_jobs[static_cast<std::size_t>(j)], now);
    completions.push(e);
  };

  // Job entered kRunning: placement, throughput and pause_until are final.
  auto index_start = [&](int j, double now) {
    const SimJob& sj = sim_jobs[static_cast<std::size_t>(j)];
    running_idx.insert(j);
    for (const auto& slice : sj.placement.slices) node_idx.add(slice.node, j);
    busy_gpus_now += sj.placement.total_gpus();
    push_completion(j, now);
  };

  // Job is leaving kRunning (finish / eviction / preemptive release); its
  // placement is still attached — must run before the placement is cleared.
  auto index_stop = [&](int j) {
    const SimJob& sj = sim_jobs[static_cast<std::size_t>(j)];
    running_idx.erase(j);
    for (const auto& slice : sj.placement.slices)
      node_idx.remove(slice.node, j);
    busy_gpus_now -= sj.placement.total_gpus();
    ++completion_version[static_cast<std::size_t>(j)];  // entry goes stale
  };

  // --- Per-job mutation bodies, shared verbatim by both engines. ---

  auto advance_job = [&](SimJob& sj, double now) {
    const double from = std::max(sj.last_advance, sj.pause_until);
    const double active = std::max(0.0, now - from);
    sj.samples_done += sj.throughput * active;
    sj.total_active += active;
    sj.gpu_seconds += active * sj.placement.total_gpus();
    sj.last_advance = now;
  };

  auto advance_to = [&](double now) {
    if (indexed) {
      for (const int j : running_idx.items())
        advance_job(sim_jobs[static_cast<std::size_t>(j)], now);
    } else {
      for (auto& sj : sim_jobs)
        if (sj.state == State::kRunning) advance_job(sj, now);
    }
  };

  // Complete when the shortfall is within float slop or under 1 ms of
  // additional progress (avoids degenerate micro-steps in the event loop).
  auto job_completed = [&](const SimJob& sj) {
    const double slop = kEps * sj.spec.target_samples + sj.throughput * 1e-3;
    return sj.samples_done + slop >= sj.spec.target_samples;
  };

  auto finish_job = [&](int j, double now) {
    SimJob& sj = sim_jobs[static_cast<std::size_t>(j)];
    if (indexed) index_stop(j);
    cluster.release(sj.placement);
    sj.placement = Placement{};
    sj.state = State::kFinished;
    sj.finish_time_s = now;
    if (indexed) {
      active_idx.erase(j);
      ++finished_count;
    }
  };

  auto finish_completed = [&](double now) {
    bool any = false;
    if (indexed) {
      scratch_jobs = running_idx.items();  // finishing mutates the index
      for (const int j : scratch_jobs) {
        if (!job_completed(sim_jobs[static_cast<std::size_t>(j)])) continue;
        finish_job(j, now);
        any = true;
      }
    } else {
      for (std::size_t i = 0; i < sim_jobs.size(); ++i) {
        if (sim_jobs[i].state != State::kRunning) continue;
        if (!job_completed(sim_jobs[i])) continue;
        finish_job(static_cast<int>(i), now);
        any = true;
      }
    }
    return any;
  };

  auto activate_ready = [&](double now) {
    bool any = false;
    if (indexed) {
      while (arrival_cursor < arrival_order.size()) {
        const int j = arrival_order[arrival_cursor];
        SimJob& sj = sim_jobs[static_cast<std::size_t>(j)];
        if (sj.ready_time_s > now + kEps) break;
        ++arrival_cursor;
        sj.state = State::kPending;
        sj.queued_since = now;
        active_idx.insert(j);
        any = true;
      }
    } else {
      for (auto& sj : sim_jobs) {
        if (sj.state == State::kNotReady && sj.ready_time_s <= now + kEps) {
          sj.state = State::kPending;
          sj.queued_since = now;
          any = true;
        }
      }
    }
    return any;
  };

  auto notify_fault = [&](const SimFaultNotice& notice) {
    if (ctx.observer != nullptr) ctx.observer->on_fault(notice);
  };

  // A gang-synchronous job runs at its slowest node's pace, so a straggler
  // episode on any node of the placement scales the whole job.
  auto placement_speed_factor = [&](const Placement& p) {
    double factor = 1.0;
    for (const auto& slice : p.slices)
      factor = std::min(
          factor, straggler_factor[static_cast<std::size_t>(slice.node)]);
    return factor;
  };

  // Evicts a running job: resources released, progress kept (it was
  // advanced to `now` already), checkpoint-restore cost owed at the next
  // start. The caller schedules a round right after.
  auto evict_job = [&](int j, double now) {
    SimJob& sj = sim_jobs[static_cast<std::size_t>(j)];
    if (indexed) index_stop(j);
    cluster.release(sj.placement);
    sj.placement = Placement{};
    sj.state = State::kPending;
    sj.queued_since = now;
    sj.throughput = 0.0;
    ++sj.crash_restarts;
    ++result.crash_restarts;
    sj.pending_restore_cost_s = failure_opts.crash_restore_cost_s;
  };

  auto evict_jobs_on_node = [&](int node, double now) {
    if (indexed) {
      scratch_jobs = node_idx.jobs_on(node);  // eviction mutates the index
      for (const int j : scratch_jobs) evict_job(j, now);
      return;
    }
    for (std::size_t i = 0; i < sim_jobs.size(); ++i) {
      SimJob& sj = sim_jobs[i];
      if (sj.state != State::kRunning) continue;
      bool touches = false;
      for (const auto& slice : sj.placement.slices)
        if (slice.node == node) {
          touches = true;
          break;
        }
      if (!touches) continue;
      evict_job(static_cast<int>(i), now);
    }
  };

  // Applies every fault event due at or before `now`; returns true when at
  // least one fired (which forces a scheduling round).
  auto apply_faults_due = [&](double now) {
    if (faults == nullptr) return false;
    bool any = false;
    const std::vector<FaultEvent>& events = faults->events();
    while (next_fault < events.size() &&
           events[next_fault].time_s <= now + kEps) {
      const FaultEvent& e = events[next_fault++];
      const std::size_t n = static_cast<std::size_t>(e.node);
      any = true;
      SimFaultNotice notice;
      notice.now_s = now;
      notice.node = e.node;
      notice.severity = e.severity;
      switch (e.kind) {
        case FaultKind::kNodeCrash:
          node_down[n] = 1;
          evict_jobs_on_node(e.node, now);
          ++result.fault_node_crashes;
          RUBICK_COUNTER_ADD("failures.node_crash", 1);
          notice.kind = SimFaultNotice::Kind::kNodeCrash;
          break;
        case FaultKind::kNodeRecover:
          node_down[n] = 0;
          notice.kind = SimFaultNotice::Kind::kNodeRecover;
          break;
        case FaultKind::kGpuTransient:
          // The node stays schedulable; only the jobs on it restart.
          evict_jobs_on_node(e.node, now);
          ++result.fault_gpu_transients;
          RUBICK_COUNTER_ADD("failures.gpu_transient", 1);
          notice.kind = SimFaultNotice::Kind::kGpuTransient;
          break;
        case FaultKind::kStragglerBegin:
          straggler_factor[n] = e.severity;
          ++result.fault_straggler_episodes;
          RUBICK_COUNTER_ADD("failures.straggler", 1);
          notice.kind = SimFaultNotice::Kind::kStragglerBegin;
          break;
        case FaultKind::kStragglerEnd:
          straggler_factor[n] = 1.0;
          notice.kind = SimFaultNotice::Kind::kStragglerEnd;
          break;
      }
      // Straggler transitions rescale every affected running job (progress
      // up to `now` was already integrated at the old rate). Only jobs with
      // a slice on the transitioning node can change rate; the legacy scan
      // recomputes the same product for every other running job and writes
      // back the value it already holds.
      if (e.kind == FaultKind::kStragglerBegin ||
          e.kind == FaultKind::kStragglerEnd) {
        if (indexed) {
          for (const int j : node_idx.jobs_on(e.node)) {
            SimJob& sj = sim_jobs[static_cast<std::size_t>(j)];
            sj.throughput =
                sj.base_throughput * placement_speed_factor(sj.placement);
            // Mid-flight re-rating: the old completion entry is stale from
            // this instant; re-key at the new rate.
            push_completion(j, now);
          }
        } else {
          for (auto& sj : sim_jobs) {
            if (sj.state != State::kRunning) continue;
            sj.throughput =
                sj.base_throughput * placement_speed_factor(sj.placement);
          }
        }
      }
      notify_fault(notice);
    }
    return any;
  };

  auto apply_assignments = [&](const std::vector<Assignment>& assignments,
                               double now) {
    assignment_by_id.clear();
    for (const auto& a : assignments) {
      RUBICK_CHECK_MSG(assignment_by_id.emplace(a.job_id, &a).second,
                       "duplicate assignment for job " << a.job_id);
    }

    // Phase 1: release every running job whose assignment changes or
    // disappears, so phase 2 allocates against up-to-date free resources.
    auto release_if_changed = [&](int j) {
      SimJob& sj = sim_jobs[static_cast<std::size_t>(j)];
      const auto it = assignment_by_id.find(sj.spec.id);
      const Assignment* a = it == assignment_by_id.end() ? nullptr : it->second;
      const bool keep = a != nullptr && !a->placement.empty() &&
                        a->placement == sj.placement && a->plan == sj.plan;
      if (keep) return;
      if (indexed) index_stop(j);
      cluster.release(sj.placement);
      sj.placement = Placement{};
      sj.state = State::kPending;
      sj.queued_since = now;
    };
    if (indexed) {
      scratch_jobs = running_idx.items();  // releasing mutates the index
      for (const int j : scratch_jobs) release_if_changed(j);
    } else {
      for (std::size_t i = 0; i < sim_jobs.size(); ++i)
        if (sim_jobs[i].state == State::kRunning)
          release_if_changed(static_cast<int>(i));
    }

    // Phase 2: start / restart jobs per the new assignments.
    for (const auto& a : assignments) {
      if (a.placement.empty()) continue;  // leave pending
      const auto idx_it = job_index_by_id.find(a.job_id);
      RUBICK_CHECK_MSG(idx_it != job_index_by_id.end(),
                       "assignment for unknown job");
      const std::size_t ji = idx_it->second;
      SimJob& sj = sim_jobs[ji];
      RUBICK_CHECK_MSG(sj.state != State::kNotReady,
                       "assignment for job " << a.job_id
                                             << " before profiling finished");
      RUBICK_CHECK_MSG(sj.state != State::kFinished,
                       "assignment for finished job " << a.job_id);
      if (sj.state == State::kRunning) continue;  // unchanged, kept in phase 1

      const ModelSpec& model = find_model(sj.spec.model_name);
      RUBICK_CHECK_MSG(
          a.plan.num_gpus() == a.placement.total_gpus(),
          "plan " << a.plan.display_name() << " does not match placement "
                  << a.placement.to_string());
      RUBICK_CHECK_MSG(a.plan.valid_for(model, sj.spec.global_batch),
                       "invalid plan " << a.plan.display_name() << " for "
                                       << model.name);
      if (a.plan.tp > 1) {
        for (const auto& slice : a.placement.slices)
          RUBICK_CHECK_MSG(slice.gpus % a.plan.tp == 0,
                           "TP group split across nodes: "
                               << a.placement.to_string());
      }
      const std::uint64_t gpu_need =
          estimator.gpu_bytes(model, a.plan, sj.spec.global_batch);
      RUBICK_CHECK_MSG(gpu_need <= cluster_spec_.node.gpu_memory_bytes,
                       "plan " << a.plan.display_name() << " OOMs on "
                               << model.name);

      const bool was_warm = sj.ever_ran;
      double warm_penalty = opts.reconfig_penalty_s;
      if (opts.size_dependent_reconfig_cost)
        warm_penalty = opts.launch_delay_s +
                       static_cast<double>(model.full_state_bytes()) /
                           opts.checkpoint_bw_bps;
      double penalty = was_warm ? warm_penalty : opts.launch_delay_s;

      // Reconfiguration-failure injection (ISSUE 6): a warm attempt may
      // abort after paying its latency. The job's pre-attempt allocation
      // was already released in phase 1, so it simply stays pending and
      // retries after capped exponential backoff. Degraded jobs re-run
      // their proven configuration and are exempt — that is what makes
      // degradation a guarantee of forward progress.
      if (faults != nullptr && was_warm && !sj.degraded) {
        const int attempt = sj.reconfig_attempts++;
        if (faults->reconfig_attempt_fails(sj.spec.id, attempt)) {
          ++sj.consecutive_failures;
          ++sj.total_reconfig_failures;
          ++result.fault_reconfig_failures;
          RUBICK_COUNTER_ADD("failures.reconfig", 1);
          double backoff_s = failure_opts.retry_backoff_base_s;
          for (int i = 1; i < sj.consecutive_failures &&
                          backoff_s < failure_opts.retry_backoff_cap_s;
               ++i)
            backoff_s *= 2.0;
          backoff_s = std::min(backoff_s, failure_opts.retry_backoff_cap_s);
          sj.retry_not_before_s = now + penalty + backoff_s;
          sj.retry_wake_pending = true;
          sj.queued_since = now;
          if (indexed) {
            // One live backoff entry per armed retry gate; any earlier
            // entry for this job goes stale with the version bump.
            SimEvent e;
            e.job = static_cast<int>(ji);
            e.kind = SimEventKind::kBackoffExpiry;
            e.version = ++retry_version[ji];
            e.time_s = sj.retry_not_before_s;
            backoffs.push(e);
          }
          if (sj.consecutive_failures >= failure_opts.max_reconfig_retries)
            sj.degraded = true;
          SimFaultNotice notice;
          notice.now_s = now;
          notice.kind = SimFaultNotice::Kind::kReconfigFailure;
          notice.job_id = sj.spec.id;
          notice.prior_placement = &sj.placement;  // released: empty
          notice.prior_plan = &sj.plan;
          notify_fault(notice);
          continue;
        }
        sj.consecutive_failures = 0;
      }

      cluster.allocate(a.placement);  // throws if over-committed
      // Checkpoint restore owed from a crash / transient eviction is paid
      // on top of the start latency (zero in fault-free runs).
      penalty += sj.pending_restore_cost_s;
      sj.pending_restore_cost_s = 0.0;
      if (was_warm) ++sj.reconfig_count;
      sj.placement = a.placement;
      sj.plan = a.plan;
      sj.state = State::kRunning;
      sj.pause_until = now + penalty;
      sj.last_advance = now;
      sj.ever_ran = true;
      if (sj.first_start < 0.0) sj.first_start = now;
      // Only checkpoint-resume cycles count as reconfiguration overhead
      // (the paper's ~1%-of-GPU-hours figure); cold launches are the cost
      // any scheduler pays once per job.
      if (was_warm)
        result.reconfig_overhead_gpu_seconds +=
            penalty * sj.placement.total_gpus();

      const PerfContext perf_ctx = make_perf_context(cluster_spec_,
                                                     a.placement);
      const double measured =
          opts.advance_with_fitted_model
              ? store.get(sj.spec.model_name)
                    .predict_throughput(model, sj.plan, sj.spec.global_batch,
                                        perf_ctx)
              : oracle_->measure_throughput(model, sj.plan,
                                            sj.spec.global_batch, perf_ctx);
      if (opts.online_refinement && !opts.advance_with_fitted_model) {
        PerfSample obs;
        obs.plan = sj.plan;
        obs.global_batch = sj.spec.global_batch;
        obs.ctx = perf_ctx;
        obs.measured_throughput = measured;
        if (store.record_observation(sj.spec.model_name, model, obs))
          ++result.online_refits;
      }
      RUBICK_CHECK_MSG(a.statistical_efficiency > 0.0 &&
                           a.statistical_efficiency <= 1.0,
                       "statistical efficiency must be in (0, 1]");
      sj.throughput = measured * a.statistical_efficiency;
      RUBICK_CHECK(sj.throughput > 0.0);
      sj.base_throughput = sj.throughput;
      if (faults != nullptr) {
        // Successful start: this configuration is the new last-known-good,
        // any backoff gate is cleared, and straggler episodes on the
        // placement's nodes scale the effective rate.
        sj.has_last_good = true;
        sj.last_good_plan = a.plan;
        sj.retry_not_before_s = 0.0;
        sj.retry_wake_pending = false;
        if (indexed) ++retry_version[ji];  // any armed backoff entry: stale
        sj.throughput =
            sj.base_throughput * placement_speed_factor(a.placement);
      }
      sj.history.push_back(AssignmentRecord{now, a.placement.total_gpus(),
                                            a.placement.total_cpus(), a.plan,
                                            sj.throughput});
      if (indexed) index_start(static_cast<int>(ji), now);
    }
  };

  auto fill_job_view = [](JobView& v, const SimJob& sj) {
    v.spec = &sj.spec;
    v.running = sj.state == State::kRunning;
    v.placement = sj.placement;
    v.plan = sj.plan;
    v.samples_done = sj.samples_done;
    v.remaining_samples = sj.remaining();
    v.queued_since = sj.queued_since;
    v.total_active_time_s = sj.total_active;
    v.reconfig_count = sj.reconfig_count;
    v.reconfig_failures = sj.consecutive_failures;
    v.retry_not_before_s = sj.retry_not_before_s;
    v.degraded = sj.degraded;
    v.has_last_good = sj.has_last_good;
    // Slots are reused across rounds, so the no-last-good case must
    // actively reset the plan to its default-constructed value.
    v.last_good_plan = sj.has_last_good ? sj.last_good_plan : ExecutionPlan{};
  };

  auto build_input = [&](double now) -> const SchedulerInput& {
    input_buf.now = now;
    std::size_t count = 0;
    auto emit = [&](const SimJob& sj) {
      if (count == input_buf.jobs.size()) input_buf.jobs.emplace_back();
      fill_job_view(input_buf.jobs[count], sj);
      ++count;
    };
    if (indexed) {
      for (const int j : active_idx.items())
        emit(sim_jobs[static_cast<std::size_t>(j)]);
    } else {
      for (const auto& sj : sim_jobs) {
        if (sj.state != State::kPending && sj.state != State::kRunning)
          continue;
        emit(sj);
      }
    }
    input_buf.jobs.resize(count);
    return input_buf;
  };

  // Snapshot for SimObserver hooks; pointers borrow simulator stack state
  // and are valid only inside the callback (see core/audit.h). The buffer
  // is reused tick to tick — observers that keep data must copy it, which
  // the lifetime contract has required since PR 2.
  auto make_tick = [&](double now, bool scheduled) -> const SimTick& {
    tick_buf.now_s = now;
    tick_buf.scheduled = scheduled;
    tick_buf.jobs.clear();
    tick_buf.jobs.reserve(sim_jobs.size());
    for (const auto& sj : sim_jobs) {
      AuditJobState a;
      a.spec = &sj.spec;
      a.phase = sj.state;
      a.placement = &sj.placement;
      a.plan = &sj.plan;
      a.samples_done = sj.samples_done;
      a.throughput = sj.state == State::kRunning ? sj.throughput : 0.0;
      tick_buf.jobs.push_back(a);
    }
    return tick_buf;
  };

  // Exact minimum over the live completion entries: pop every candidate
  // whose pushed key falls within the drift window of the best exact value
  // seen so far, recompute it with the legacy expression, and re-push the
  // survivors re-keyed at their exact value (resetting their drift). Any
  // entry left in the heap is provably later than the returned minimum.
  auto next_completion_time_s = [&](double now) {
    double best = std::numeric_limits<double>::infinity();
    scratch_events.clear();
    while (!completions.empty()) {
      const SimEvent top = completions.top();
      if (top.version !=
          completion_version[static_cast<std::size_t>(top.job)]) {
        completions.pop();
        RUBICK_COUNTER_ADD("sim.stale_events", 1);
        continue;
      }
      if (std::isfinite(best) && top.time_s > best + kCompletionSlackS) break;
      completions.pop();
      SimEvent refreshed = top;
      refreshed.time_s = exact_completion_s(
          sim_jobs[static_cast<std::size_t>(top.job)], now);
      best = std::min(best, refreshed.time_s);
      scratch_events.push_back(refreshed);
    }
    for (const SimEvent& e : scratch_events) completions.push(e);
    return best;
  };

  auto next_event_time_s = [&](double now) {
    if (indexed) {
      double next = std::numeric_limits<double>::infinity();
      if (arrival_cursor < arrival_order.size())
        next = std::min(
            next, sim_jobs[static_cast<std::size_t>(
                               arrival_order[arrival_cursor])].ready_time_s);
      next = std::min(next, next_completion_time_s(now));
      while (!backoffs.empty() &&
             backoffs.top().version !=
                 retry_version[static_cast<std::size_t>(backoffs.top().job)]) {
        backoffs.pop();
        RUBICK_COUNTER_ADD("sim.stale_events", 1);
      }
      // Live entries past this tick's due-processing are strictly in the
      // future, mirroring the legacy `retry_not_before_s > now` filter.
      if (!backoffs.empty()) next = std::min(next, backoffs.top().time_s);
      if (faults != nullptr && next_fault < faults->events().size() &&
          finished_count < num_jobs_total)
        next = std::min(next, faults->events()[next_fault].time_s);
      return next;
    }
    double next = std::numeric_limits<double>::infinity();
    for (const auto& sj : sim_jobs) {
      if (sj.state == State::kNotReady) {
        next = std::min(next, sj.ready_time_s);
      } else if (sj.state == State::kRunning) {
        next = std::min(next, exact_completion_s(sj, now));
      } else if (sj.state == State::kPending && sj.retry_wake_pending &&
                 sj.retry_not_before_s > now) {
        // Backoff expiry wakes the loop for a retry round.
        next = std::min(next, sj.retry_not_before_s);
      }
    }
    if (faults != nullptr && next_fault < faults->events().size()) {
      // Leftover fault events matter only while some job could still be
      // affected; once everything finished the run is over.
      bool all_finished = true;
      for (const auto& sj : sim_jobs)
        if (sj.state != State::kFinished) {
          all_finished = false;
          break;
        }
      if (!all_finished)
        next = std::min(next, faults->events()[next_fault].time_s);
    }
    return next;
  };

  // --- Main loop. ---
  double now = 0.0;
  while (true) {
    // Stamp log lines with simulated time (JSON log mode). The stamp is
    // thread-local, so concurrent seed-sweep runs never cross-stamp.
    set_log_sim_time_s(now);
    advance_to(now);
    const bool completed = finish_completed(now);
    const bool faulted = apply_faults_due(now);
    // Fault application mutates job and cluster state ahead of the
    // scheduling round; show observers that intermediate state. The
    // auditor needs it to tell a crash-evicted job's fresh re-admission
    // (legal ramp-up from pending) apart from an in-round shrink of a
    // running job (a guarantee violation).
    if (faulted && ctx.observer != nullptr)
      ctx.observer->on_tick(make_tick(now, /*scheduled=*/false));
    const bool arrived = activate_ready(now);
    // A retry becomes due when a failed job's backoff gate expires; that
    // must trigger a round or the job would wait for an unrelated event.
    bool retry_due = false;
    if (faults != nullptr) {
      if (indexed) {
        while (!backoffs.empty() && backoffs.top().time_s <= now + kEps) {
          const SimEvent e = backoffs.top();
          backoffs.pop();
          if (e.version != retry_version[static_cast<std::size_t>(e.job)]) {
            RUBICK_COUNTER_ADD("sim.stale_events", 1);
            continue;
          }
          SimJob& sj = sim_jobs[static_cast<std::size_t>(e.job)];
          RUBICK_DCHECK_MSG(
              sj.state == State::kPending && sj.retry_wake_pending,
              "live backoff entry for a job without an armed retry gate");
          sj.retry_wake_pending = false;
          ++retry_version[static_cast<std::size_t>(e.job)];
          retry_due = true;
        }
      } else {
        for (auto& sj : sim_jobs) {
          if (sj.state == State::kPending && sj.retry_wake_pending &&
              sj.retry_not_before_s <= now + kEps) {
            sj.retry_wake_pending = false;
            retry_due = true;
          }
        }
      }
    }
    RUBICK_COUNTER_ADD("sim.ticks", 1);
    if (completed) RUBICK_COUNTER_ADD("sim.completion_events", 1);
    if (arrived) RUBICK_COUNTER_ADD("sim.arrival_events", 1);

    bool scheduled = false;
    if (completed || arrived || faulted || retry_due ||
        result.scheduling_rounds == 0) {
      const SchedulerInput& input = build_input(now);
      if (!input.jobs.empty()) {
        const std::vector<Assignment> assignments = policy.schedule(input);
        apply_assignments(assignments, now);
        ++result.scheduling_rounds;
        scheduled = true;
        RUBICK_COUNTER_ADD("sim.sched_rounds", 1);
      }
      TimelineSample sample;
      sample.time_s = now;
      sample.total_gpus = cluster_spec_.total_gpus();
      if (indexed) {
        sample.running_jobs = static_cast<int>(running_idx.size());
        sample.busy_gpus = busy_gpus_now;
        sample.pending_jobs =
            static_cast<int>(active_idx.size() - running_idx.size());
      } else {
        for (const auto& sj : sim_jobs) {
          if (sj.state == State::kRunning) {
            ++sample.running_jobs;
            sample.busy_gpus += sj.placement.total_gpus();
          } else if (sj.state == State::kPending) {
            ++sample.pending_jobs;
          }
        }
      }
      result.timeline.record(sample);
    }

    if (ctx.observer != nullptr) ctx.observer->on_tick(make_tick(now, scheduled));

    const double next = next_event_time_s(now);
    if (!std::isfinite(next)) {
      // No running jobs and no future arrivals: everything must be done.
      std::string pending_desc;
      for (const auto& sj : sim_jobs)
        if (sj.state == State::kPending)
          pending_desc += " " + sj.spec.to_string();
      RUBICK_CHECK_MSG(pending_desc.empty(),
                       "scheduler deadlock: pending jobs but idle cluster at t="
                           << now << ":" << pending_desc);
      break;
    }
    RUBICK_CHECK_MSG(next <= opts.max_sim_time_s,
                     "simulation exceeded max_sim_time");
    now = std::max(now, next);
  }

  if (ctx.observer != nullptr)
    ctx.observer->on_run_end(make_tick(now, /*scheduled=*/false));
  set_log_sim_time_s(-1.0);  // leave the run's time out of later log lines

  // --- Collect results. ---
  double makespan = 0.0;
  for (std::size_t i = 0; i < sim_jobs.size(); ++i) {
    const SimJob& sj = sim_jobs[i];
    JobResult& jr = result.jobs[i];
    jr.spec = sj.spec;
    jr.finished = sj.state == State::kFinished;
    jr.history = sj.history;
    jr.first_start_s = sj.first_start;
    jr.finish_s = sj.finish_time_s;
    jr.jct_s = jr.finished ? sj.finish_time_s - sj.spec.submit_time_s : 0.0;
    jr.reconfig_count = sj.reconfig_count;
    jr.total_active_time_s = sj.total_active;
    jr.gpu_seconds = sj.gpu_seconds;
    jr.crash_restarts = sj.crash_restarts;
    jr.reconfig_failures = sj.total_reconfig_failures;
    jr.degraded = sj.degraded;
    if (sj.degraded) ++result.degraded_jobs;
    result.total_gpu_seconds += sj.gpu_seconds;

    const ModelSpec& model = find_model(sj.spec.model_name);
    const PerfContext base_ctx = make_perf_context(
        cluster_spec_, sj.spec.requested.gpus, sj.spec.requested.cpus);
    if (sj.spec.initial_plan.valid_for(model, sj.spec.global_batch)) {
      jr.baseline_throughput = oracle_->measure_throughput(
          model, sj.spec.initial_plan, sj.spec.global_batch, base_ctx);
    }
    if (jr.finished && sj.finish_time_s > sj.first_start)
      jr.achieved_throughput =
          sj.spec.target_samples / (sj.finish_time_s - sj.first_start);
    makespan = std::max(makespan, sj.finish_time_s);
  }
  result.makespan_s = makespan;
  return result;
}

}  // namespace rubick
