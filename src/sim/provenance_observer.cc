#include "sim/provenance_observer.h"

#include <ostream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "common/jsonx.h"
#include "provenance/decision_log.h"
#include "telemetry/trace.h"

namespace rubick {
namespace {

// Flow ends render on one dedicated sim-time track, far above job ids and
// the telemetry observer's per-node fault tracks (kFaultTidBase = 1e6).
constexpr int kDecisionTid = 2000000;

}  // namespace

ProvenanceObserver::ProvenanceObserver(ProvenanceRecorder* recorder,
                                       std::string policy_name,
                                       TraceRecorder* trace)
    : recorder_(recorder), policy_name_(std::move(policy_name)),
      trace_(trace) {}

void ProvenanceObserver::on_run_begin(const SimRunInfo& info) {
  std::ostringstream os;
  os << '{' << json_key("type") << json_str("header") << ','
     << json_key("schema_version") << 1 << ',' << json_key("policy")
     << json_str(policy_name_) << ',' << json_key("jobs")
     << (info.jobs != nullptr ? info.jobs->size() : 0) << '}';
  lines_.push_back(os.str());
  if (trace_ != nullptr && trace_->enabled()) {
    trace_->set_thread_name(kTraceSimPid, kDecisionTid, "decisions");
  }
}

void ProvenanceObserver::drain_rounds() {
  for (RoundRecord& round : recorder_->take_rounds()) {
    if (trace_ != nullptr && trace_->enabled()) {
      trace_->add_flow_end_sim("scheduler", "decision", round.now_s,
                               kDecisionTid, round.seq);
    }
    lines_.push_back(round_to_json(round));
    ++emitted_rounds_;
  }
}

void ProvenanceObserver::on_tick(const SimTick& tick) {
  (void)tick;  // rounds carry their own timestamps
  drain_rounds();
}

void ProvenanceObserver::on_fault(const SimFaultNotice& notice) {
  // Rounds already recorded happened before this fault took effect; flush
  // them first so the log stays chronological.
  drain_rounds();
  std::ostringstream os;
  os << '{' << json_key("type") << json_str("fault") << ',' << json_key("t_s")
     << json_number(notice.now_s) << ',' << json_key("kind")
     << json_str(to_string(notice.kind)) << ',' << json_key("node")
     << notice.node << ',' << json_key("job") << notice.job_id;
  if (notice.kind == SimFaultNotice::Kind::kStragglerBegin) {
    os << ',' << json_key("severity") << json_number(notice.severity);
  }
  os << '}';
  lines_.push_back(os.str());
  ++fault_lines_;
}

void ProvenanceObserver::on_run_end(const SimTick& tick) {
  drain_rounds();
  std::ostringstream os;
  os << '{' << json_key("type") << json_str("run_end") << ','
     << json_key("t_s") << json_number(tick.now_s) << ','
     << json_key("rounds") << emitted_rounds_ << ',' << json_key("faults")
     << fault_lines_ << '}';
  lines_.push_back(os.str());
}

void ProvenanceObserver::write_jsonl(std::ostream& os) const {
  for (const std::string& line : lines_) os << line << '\n';
}

}  // namespace rubick
