// TelemetryObserver: turns one simulation run into structured telemetry.
//
// Attached on the SimObserver seam (it witnesses, never steers), it copies
// the per-tick job snapshots into:
//
//   * Perfetto tracks — one track per simulated job in the "simulation"
//     trace process (pid kTraceSimPid, tid = job id): a span per contiguous
//     configuration the job ran under (labelled with its execution plan and
//     GPU count), "queued" spans while it waits, and cluster-level counter
//     tracks (busy GPUs, pending jobs). A new run span opens exactly when
//     the simulator (re)starts the job — i.e. per AssignmentRecord in the
//     job's history — so the trace is a faithful rendering of the
//     reconfiguration history.
//   * A JSONL event stream (`--events-out`): run_begin / phase / reconfig /
//     sched_round / run_end records, each stamped with simulated seconds.
//
// The observer copies everything it needs during callbacks (SimObserver
// pointers die when the callback returns) and is single-run, single-thread:
// attach a fresh instance per traced run.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "cluster/placement.h"
#include "core/audit.h"
#include "plan/execution_plan.h"

namespace rubick {

class TraceRecorder;

// One closed span on a job's track (test seam; mirrors what was emitted to
// the trace recorder).
struct JobSpanRecord {
  int job_id = 0;
  bool running = false;  // false = queued span
  std::string label;     // plan/gpus for run spans, "queued" otherwise
  double begin_s = 0.0;
  double end_s = 0.0;
};

class TelemetryObserver final : public SimObserver {
 public:
  // Records into `recorder` (defaults to the process-global one). The
  // recorder must outlive the observer; pass a local instance in tests.
  explicit TelemetryObserver(TraceRecorder* recorder = nullptr);

  void on_run_begin(const SimRunInfo& info) override;
  void on_tick(const SimTick& tick) override;
  void on_run_end(const SimTick& tick) override;
  // Fault episodes (ISSUE 6): a `fault` JSONL event per notice, plus
  // outage / straggler spans on per-node fault tracks in the trace.
  void on_fault(const SimFaultNotice& notice) override;

  // Closed job spans in emission order (available after on_run_end).
  const std::vector<JobSpanRecord>& job_spans() const { return spans_; }

  // One JSON object per line; see file comment for the event types.
  void write_events_jsonl(std::ostream& os) const;
  std::size_t event_count() const { return events_.size(); }

 private:
  struct JobState {
    SimJobPhase phase = SimJobPhase::kNotReady;
    Placement placement;
    ExecutionPlan plan;
    std::string model_name;
    bool guaranteed = true;
    // Open span, if any (`running` says which kind).
    bool span_open = false;
    bool running = false;
    std::string label;
    double span_begin_s = 0.0;
    int reconfig_count = 0;
  };

  void open_span(int job_id, JobState& st, bool running, std::string label,
                 double now_s);
  void close_span(int job_id, JobState& st, double end_s);
  void observe_tick(const SimTick& tick, bool final_tick);
  void add_event(double t_s, const std::string& type,
                 const std::string& fields_json);

  TraceRecorder* recorder_;
  std::map<int, JobState> jobs_;
  // Open fault episodes keyed by node (begin time in simulated seconds).
  std::map<int, double> open_outages_;
  std::map<int, double> open_stragglers_;
  int fault_count_ = 0;
  std::vector<JobSpanRecord> spans_;
  std::vector<std::string> events_;  // pre-rendered JSONL lines
  int total_gpus_ = 0;
  int last_busy_gpus_ = -1;
  int last_pending_ = -1;
  std::uint64_t sched_rounds_ = 0;
  bool begun_ = false;
};

}  // namespace rubick
