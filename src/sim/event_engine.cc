#include "sim/event_engine.h"

#include <algorithm>

#include "common/error.h"
#include "telemetry/metrics.h"

namespace rubick {

bool EventQueue::before(const SimEvent& a, const SimEvent& b) {
  if (a.time_s != b.time_s) return a.time_s < b.time_s;
  if (a.job != b.job) return a.job < b.job;
  if (a.version != b.version) return a.version < b.version;
  return static_cast<int>(a.kind) < static_cast<int>(b.kind);
}

void EventQueue::push(const SimEvent& event) {
  heap_.push_back(event);
  sift_up(heap_.size() - 1);
}

void EventQueue::pop() {
  RUBICK_DCHECK(!heap_.empty());
  RUBICK_COUNTER_ADD("sim.heap_pops", 1);
  heap_.front() = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) sift_down(0);
}

void EventQueue::sift_up(std::size_t at) {
  while (at > 0) {
    const std::size_t parent = (at - 1) / 2;
    if (!before(heap_[at], heap_[parent])) return;
    std::swap(heap_[at], heap_[parent]);
    at = parent;
  }
}

void EventQueue::sift_down(std::size_t at) {
  const std::size_t n = heap_.size();
  while (true) {
    std::size_t best = at;
    const std::size_t left = 2 * at + 1;
    const std::size_t right = 2 * at + 2;
    if (left < n && before(heap_[left], heap_[best])) best = left;
    if (right < n && before(heap_[right], heap_[best])) best = right;
    if (best == at) return;
    std::swap(heap_[at], heap_[best]);
    at = best;
  }
}

bool SortedJobIndex::insert(int job) {
  const auto it = std::lower_bound(items_.begin(), items_.end(), job);
  if (it != items_.end() && *it == job) return false;
  items_.insert(it, job);
  RUBICK_COUNTER_ADD("sim.index_updates", 1);
  return true;
}

bool SortedJobIndex::erase(int job) {
  const auto it = std::lower_bound(items_.begin(), items_.end(), job);
  if (it == items_.end() || *it != job) return false;
  items_.erase(it);
  RUBICK_COUNTER_ADD("sim.index_updates", 1);
  return true;
}

bool SortedJobIndex::contains(int job) const {
  return std::binary_search(items_.begin(), items_.end(), job);
}

void NodeJobIndex::reset(int num_nodes) {
  per_node_.assign(static_cast<std::size_t>(num_nodes), SortedJobIndex{});
}

void NodeJobIndex::add(int node, int job) {
  per_node_[static_cast<std::size_t>(node)].insert(job);
}

void NodeJobIndex::remove(int node, int job) {
  per_node_[static_cast<std::size_t>(node)].erase(job);
}

const std::vector<int>& NodeJobIndex::jobs_on(int node) const {
  return per_node_[static_cast<std::size_t>(node)].items();
}

}  // namespace rubick
