// SimObserver that streams decision-provenance records to a JSONL log.
//
// Sits on the same observer seam as the TelemetryObserver: the policy
// appends RoundRecords to a ProvenanceRecorder during schedule(), and this
// observer drains them at every simulator tick into pre-rendered JSONL
// lines (header / round / fault / run_end — see provenance/decision_log.h
// for the schema). Fault notices are interleaved at their simulated time,
// so a round that reacts to a fault sits right after the fault line that
// explains it.
//
// When a TraceRecorder is supplied (and enabled), each drained round also
// emits a flow-end event on the simulated-time "decisions" track with the
// round's seq as the flow id — the other half of the flow-start the policy
// records inside its phase:decide span, which is what links a Perfetto
// decision span to the simulated round it produced.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "core/audit.h"
#include "provenance/provenance.h"

namespace rubick {

class TraceRecorder;

class ProvenanceObserver final : public SimObserver {
 public:
  // `recorder` must be the one attached to the run's policy and must
  // outlive this observer. `trace` may be null (no flow events).
  ProvenanceObserver(ProvenanceRecorder* recorder, std::string policy_name,
                     TraceRecorder* trace = nullptr);

  void on_run_begin(const SimRunInfo& info) override;
  void on_tick(const SimTick& tick) override;
  void on_run_end(const SimTick& tick) override;
  void on_fault(const SimFaultNotice& notice) override;

  // One JSONL line per element, written in arrival order.
  void write_jsonl(std::ostream& os) const;
  const std::vector<std::string>& lines() const { return lines_; }
  std::uint64_t rounds_emitted() const { return emitted_rounds_; }

 private:
  void drain_rounds();

  ProvenanceRecorder* recorder_;
  std::string policy_name_;
  TraceRecorder* trace_;
  std::vector<std::string> lines_;
  std::uint64_t emitted_rounds_ = 0;
  std::size_t fault_lines_ = 0;
};

}  // namespace rubick
