#include "sim/report.h"

#include "common/stats.h"
#include "telemetry/timeline.h"

#include <fstream>
#include <ostream>

#include "common/error.h"
#include "common/table.h"
#include "common/units.h"

namespace rubick {

void write_results_csv(std::ostream& os, const SimResult& result) {
  os << "job_id,model,guaranteed,requested_gpus,submit_h,start_h,finish_h,"
        "jct_h,reconfigs,achieved_thr,baseline_thr\n";
  for (const JobResult& j : result.jobs) {
    os << j.spec.id << ',' << j.spec.model_name << ','
       << (j.spec.guaranteed ? 1 : 0) << ',' << j.spec.requested.gpus << ','
       << TextTable::fmt(to_hours(j.spec.submit_time_s), 4) << ','
       << TextTable::fmt(to_hours(j.first_start_s), 4) << ','
       << TextTable::fmt(to_hours(j.finish_s), 4) << ','
       << TextTable::fmt(to_hours(j.jct_s), 4) << ',' << j.reconfig_count
       << ',' << TextTable::fmt(j.achieved_throughput, 3) << ','
       << TextTable::fmt(j.baseline_throughput, 3) << "\n";
  }
}

void write_results_csv_file(const std::string& path,
                            const SimResult& result) {
  std::ofstream os(path);
  RUBICK_CHECK_MSG(os.good(), "cannot open " << path << " for writing");
  write_results_csv(os, result);
}

void print_summary(std::ostream& os, const std::string& policy_name,
                   const SimResult& result,
                   const SchedulerInternals* internals) {
  const Summary s = result.jct_summary();
  int reconfigs = 0, finished = 0;
  for (const auto& j : result.jobs) {
    reconfigs += j.reconfig_count;
    finished += j.finished ? 1 : 0;
  }
  os << "policy       " << policy_name << "\n"
     << "jobs         " << finished << "/" << result.jobs.size()
     << " finished\n"
     << "avg JCT      " << TextTable::fmt(to_hours(s.mean)) << " h\n"
     << "P50 JCT      " << TextTable::fmt(to_hours(s.p50)) << " h\n"
     << "P99 JCT      " << TextTable::fmt(to_hours(s.p99)) << " h\n"
     << "makespan     " << TextTable::fmt(to_hours(result.makespan_s))
     << " h\n"
     << "reconfigs    " << reconfigs << "\n"
     << "refits       " << result.online_refits << "\n"
     << "sched rounds " << result.scheduling_rounds << "\n";
  // Printed only when fault injection actually fired, so fault-free runs
  // keep their pre-ISSUE-6 output byte for byte.
  if (result.any_faults()) {
    os << "faults       " << result.fault_node_crashes << " crash, "
       << result.fault_gpu_transients << " transient, "
       << result.fault_straggler_episodes << " straggler, "
       << result.fault_reconfig_failures << " reconfig-fail\n"
       << "recovery     " << result.crash_restarts << " restarts, "
       << result.degraded_jobs << " degraded\n";
  }
  if (!result.timeline.empty()) {
    os << "utilization  "
       << TextTable::fmt(100.0 * result.timeline.average_utilization(), 0)
       << "%  ["
       << ClusterTimeline::sparkline(result.timeline.utilization_buckets(40))
       << "]\n"
       << "avg queue    "
       << TextTable::fmt(result.timeline.average_queue_length(), 1)
       << " jobs\n";
  }
  if (internals != nullptr) {
    const std::uint64_t lookups =
        internals->cache_hits + internals->cache_misses;
    if (lookups > 0) {
      os << "pred cache   " << internals->cache_hits << "/" << lookups
         << " hits ("
         << TextTable::fmt(100.0 * static_cast<double>(internals->cache_hits) /
                               static_cast<double>(lookups),
                           1)
         << "%), " << internals->cache_inserts << " inserts\n";
    }
    print_pool_stats(os, *internals);
  }
}

void print_pool_stats(std::ostream& os, const SchedulerInternals& internals) {
  if (internals.pool_tasks > 0 || internals.pool_parallel_for_calls > 0) {
    os << "thread pool  " << internals.pool_threads << " threads, "
       << internals.pool_tasks << " tasks, "
       << internals.pool_parallel_for_calls << " parallel_for, busy "
       << TextTable::fmt(internals.pool_busy_s, 2) << " s\n";
  }
}

void print_job_history(std::ostream& os, const JobResult& job) {
  os << job.spec.to_string() << "\n";
  for (const AssignmentRecord& rec : job.history) {
    os << "  t=" << TextTable::fmt(to_hours(rec.since_s), 2) << "h  g="
       << rec.gpus << " c=" << rec.cpus << "  " << rec.plan.display_name()
       << "  @" << TextTable::fmt(rec.throughput, 1) << "/s\n";
  }
  if (job.finished)
    os << "  finished t=" << TextTable::fmt(to_hours(job.finish_s), 2)
       << "h (JCT " << TextTable::fmt(to_hours(job.jct_s), 2) << "h, "
       << job.reconfig_count << " reconfigurations)\n";
}

}  // namespace rubick
