// Indexed event engine for the discrete-event simulator (DESIGN.md §13).
//
// The pre-PR event loop recomputed "what happens next" by scanning the whole
// job fleet at every tick — O(total jobs) bookkeeping per event, O(n²) per
// run. The pieces in this header make each tick touch only the jobs it
// affects:
//
//   * `EventQueue` — a versioned lazy-deletion min-heap of typed events.
//     Entries are never removed in place; instead the owner bumps the
//     job's version counter (invalidation) and pushes a fresh entry. On
//     pop, an entry whose version no longer matches the owner's counter is
//     stale and dropped. Pop order is deterministic: ascending
//     (time_s, job, version, kind) — no pointer or insertion-order ties.
//   * `SortedJobIndex` — an ascending set of job indices kept in a flat
//     vector, so iterating "all running jobs" visits them in exactly the
//     stable job-index order the legacy full-fleet scan used (the tie-break
//     contract for simultaneous events).
//   * `NodeJobIndex` — node → running jobs with a slice on that node, so a
//     node crash (or straggler transition) touches only the jobs actually
//     placed there instead of re-scanning the fleet.
//
// The structures are pure bookkeeping over job *indices* (positions in the
// run's job array, not JobSpec ids): they never read simulator state, which
// is what keeps them unit-testable and the byte-identity argument local to
// src/sim/simulator.cc (see the engine-vs-legacy differential test in
// tests/test_sim_engine.cc).
//
// Telemetry: `EventQueue::pop` counts `sim.heap_pops` and the index
// mutators count `sim.index_updates`; stale drops are counted by the caller
// (`sim.stale_events`) because only the owner knows an entry's liveness.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace rubick {

enum class SimEventKind : std::uint8_t {
  kCompletion = 0,     // a running job is predicted to reach its target
  kBackoffExpiry = 1,  // a failed reconfiguration's retry gate opens
};

struct SimEvent {
  double time_s = 0.0;
  int job = 0;  // index into the run's job array (NOT the JobSpec id)
  std::uint64_t version = 0;
  SimEventKind kind = SimEventKind::kCompletion;
};

// Binary min-heap over SimEvent with deterministic ordering. Invalidation
// is the owner's job (version counters); the queue itself only orders.
class EventQueue {
 public:
  bool empty() const { return heap_.empty(); }
  std::size_t size() const { return heap_.size(); }
  const SimEvent& top() const { return heap_.front(); }

  void push(const SimEvent& event);
  void pop();
  void clear() { heap_.clear(); }

 private:
  // True when `a` fires strictly before `b` (total order, no ties).
  static bool before(const SimEvent& a, const SimEvent& b);

  void sift_up(std::size_t at);
  void sift_down(std::size_t at);

  std::vector<SimEvent> heap_;
};

// Ascending set of job indices in a flat vector. Insert/erase are
// O(size) (memmove), iteration is cache-linear and in stable job-index
// order. Sized for "jobs concurrently running/active", not the fleet.
class SortedJobIndex {
 public:
  // Both return false when the operation was a no-op (already present /
  // absent), so callers can keep derived counters exact.
  bool insert(int job);
  bool erase(int job);
  bool contains(int job) const;

  bool empty() const { return items_.empty(); }
  std::size_t size() const { return items_.size(); }
  const std::vector<int>& items() const { return items_; }
  void clear() { items_.clear(); }

 private:
  std::vector<int> items_;
};

// node id -> running jobs with at least one placement slice on that node.
// A job placed across k nodes appears in k per-node sets exactly once each
// (multi-slice-per-node placements deduplicate).
class NodeJobIndex {
 public:
  explicit NodeJobIndex(int num_nodes = 0) { reset(num_nodes); }

  void reset(int num_nodes);
  void add(int node, int job);
  void remove(int node, int job);
  const std::vector<int>& jobs_on(int node) const;

 private:
  std::vector<SortedJobIndex> per_node_;
};

}  // namespace rubick
