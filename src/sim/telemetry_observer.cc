#include "sim/telemetry_observer.h"
#include "trace/job.h"

#include <ostream>
#include <sstream>
#include <utility>

#include "common/jsonx.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"

namespace rubick {

namespace {

std::string run_label(const ExecutionPlan& plan, const Placement& placement) {
  std::ostringstream label;
  label << plan.display_name() << " x" << placement.total_gpus() << "g";
  if (placement.multi_node()) label << "/" << placement.num_nodes() << "n";
  return label.str();
}

// Fault episodes render on per-node tracks well above any job id.
// Stragglers get their own track range: a straggler episode can span a
// node outage (begin before the crash, end after the recovery), and two
// partially-overlapping 'X' spans on one track break Chrome-trace nesting.
constexpr int kFaultTidBase = 1000000;
constexpr int kStragglerTidBase = 1500000;

}  // namespace

TelemetryObserver::TelemetryObserver(TraceRecorder* recorder)
    : recorder_(recorder != nullptr ? recorder : &TraceRecorder::global()) {}

void TelemetryObserver::add_event(double t_s, const std::string& type,
                                  const std::string& fields_json) {
  std::ostringstream line;
  line << "{\"type\": " << json_str(type) << ", \"t_s\": " << json_number(t_s);
  if (!fields_json.empty()) line << ", " << fields_json;
  line << "}";
  events_.push_back(line.str());
}

void TelemetryObserver::on_run_begin(const SimRunInfo& info) {
  begun_ = true;
  total_gpus_ = info.cluster != nullptr ? info.cluster->total_gpus() : 0;
  recorder_->set_process_name(kTraceSimPid, "simulation");
  recorder_->set_process_name(kTraceSchedulerPid, "scheduler");
  if (info.jobs != nullptr) {
    for (const JobSpec& spec : *info.jobs) {
      JobState& st = jobs_[spec.id];
      st.model_name = spec.model_name;
      st.guaranteed = spec.guaranteed;
      std::ostringstream track;
      track << "job " << spec.id << " " << spec.model_name
            << (spec.guaranteed ? "" : " (BE)");
      recorder_->set_thread_name(kTraceSimPid, spec.id, track.str());
    }
  }
  std::ostringstream fields;
  fields << "\"jobs\": " << jobs_.size() << ", \"total_gpus\": "
         << total_gpus_;
  add_event(0.0, "run_begin", fields.str());
}

void TelemetryObserver::on_fault(const SimFaultNotice& notice) {
  ++fault_count_;
  RUBICK_COUNTER_ADD("telemetry.fault_events", 1);
  std::ostringstream fields;
  fields << "\"kind\": " << json_str(to_string(notice.kind));
  if (notice.node >= 0) fields << ", \"node\": " << notice.node;
  if (notice.job_id >= 0) fields << ", \"job\": " << notice.job_id;
  if (notice.kind == SimFaultNotice::Kind::kStragglerBegin)
    fields << ", \"severity\": " << json_number(notice.severity);
  add_event(notice.now_s, "fault", fields.str());

  const int tid = kFaultTidBase + notice.node;
  switch (notice.kind) {
    case SimFaultNotice::Kind::kNodeCrash:
      recorder_->set_thread_name(kTraceSimPid, tid,
                                 "node " + std::to_string(notice.node) +
                                     " faults");
      open_outages_[notice.node] = notice.now_s;
      break;
    case SimFaultNotice::Kind::kNodeRecover: {
      auto it = open_outages_.find(notice.node);
      if (it != open_outages_.end()) {
        recorder_->add_complete_sim("outage", "fault", it->second,
                                    notice.now_s, tid);
        open_outages_.erase(it);
      }
      break;
    }
    case SimFaultNotice::Kind::kStragglerBegin:
      recorder_->set_thread_name(kTraceSimPid, kStragglerTidBase + notice.node,
                                 "node " + std::to_string(notice.node) +
                                     " stragglers");
      open_stragglers_[notice.node] = notice.now_s;
      break;
    case SimFaultNotice::Kind::kStragglerEnd: {
      auto it = open_stragglers_.find(notice.node);
      if (it != open_stragglers_.end()) {
        recorder_->add_complete_sim("straggler", "fault", it->second,
                                    notice.now_s,
                                    kStragglerTidBase + notice.node);
        open_stragglers_.erase(it);
      }
      break;
    }
    case SimFaultNotice::Kind::kGpuTransient:
      recorder_->set_thread_name(kTraceSimPid, tid,
                                 "node " + std::to_string(notice.node) +
                                     " faults");
      // Zero-duration blip: render as a thin span so it is visible.
      recorder_->add_complete_sim("gpu-transient", "fault", notice.now_s,
                                  notice.now_s, tid);
      break;
    case SimFaultNotice::Kind::kReconfigFailure:
      // Job-scoped, no node track; the JSONL event carries the job id.
      break;
  }
}

void TelemetryObserver::open_span(int job_id, JobState& st, bool running,
                                  std::string label, double now_s) {
  st.span_open = true;
  st.running = running;
  st.label = std::move(label);
  st.span_begin_s = now_s;
  (void)job_id;
}

void TelemetryObserver::close_span(int job_id, JobState& st, double end_s) {
  if (!st.span_open) return;
  st.span_open = false;
  // Zero-length spans (opened and closed at the same event time) are real —
  // e.g. a job scheduled and immediately reconfigured within one tick — but
  // render as nothing; skip them to keep the trace tidy.
  if (end_s > st.span_begin_s) {
    std::ostringstream args;
    args << "{\"job\": " << job_id << ", \"kind\": "
         << (st.running ? "\"run\"" : "\"queued\"") << "}";
    recorder_->add_complete_sim(st.label, st.running ? "job" : "wait",
                                st.span_begin_s, end_s, job_id, args.str());
    spans_.push_back({job_id, st.running, st.label, st.span_begin_s, end_s});
  }
}

void TelemetryObserver::observe_tick(const SimTick& tick, bool final_tick) {
  const double now_s = tick.now_s;
  int pending = 0;
  for (const AuditJobState& job : tick.jobs) {
    if (job.spec == nullptr) continue;
    const int id = job.spec->id;
    JobState& st = jobs_[id];
    const SimJobPhase prev = st.phase;
    const SimJobPhase cur = job.phase;
    if (cur == SimJobPhase::kPending) ++pending;

    switch (cur) {
      case SimJobPhase::kNotReady:
        break;
      case SimJobPhase::kPending:
        if (prev != SimJobPhase::kPending) {
          close_span(id, st, now_s);
          open_span(id, st, /*running=*/false, "queued", now_s);
          add_event(now_s, "phase",
                    "\"job\": " + std::to_string(id) + ", \"phase\": " +
                        std::string(prev == SimJobPhase::kRunning
                                        ? "\"preempted\""
                                        : "\"pending\""));
        }
        break;
      case SimJobPhase::kRunning: {
        const bool was_running = prev == SimJobPhase::kRunning;
        const bool have_config =
            job.placement != nullptr && job.plan != nullptr;
        const bool config_changed =
            have_config && (!was_running || !(st.placement == *job.placement) ||
                            !(st.plan == *job.plan));
        if (config_changed) {
          close_span(id, st, now_s);
          if (have_config) {
            st.placement = *job.placement;
            st.plan = *job.plan;
          }
          open_span(id, st, /*running=*/true,
                    run_label(st.plan, st.placement), now_s);
          if (was_running) {
            ++st.reconfig_count;
            add_event(now_s, "reconfig",
                      "\"job\": " + std::to_string(id) + ", \"to\": " +
                          json_str(st.label) + ", \"count\": " +
                          std::to_string(st.reconfig_count));
          } else {
            add_event(now_s, "phase",
                      "\"job\": " + std::to_string(id) +
                          ", \"phase\": \"running\", \"config\": " +
                          json_str(st.label));
          }
        }
        break;
      }
      case SimJobPhase::kFinished:
        if (prev != SimJobPhase::kFinished) {
          close_span(id, st, now_s);
          add_event(now_s, "phase",
                    "\"job\": " + std::to_string(id) +
                        ", \"phase\": \"finished\", \"reconfigs\": " +
                        std::to_string(st.reconfig_count));
        }
        break;
    }
    st.phase = cur;
  }

  if (final_tick) {
    for (auto& [id, st] : jobs_) close_span(id, st, now_s);
  }

  // Cluster-level counter tracks, emitted only on change.
  int busy_gpus = 0;
  if (tick.cluster_state != nullptr) {
    busy_gpus = total_gpus_ - tick.cluster_state->free_total().gpus;
  }
  if (busy_gpus != last_busy_gpus_) {
    recorder_->add_counter_sim("busy_gpus", now_s, 0,
                               "{\"gpus\": " + std::to_string(busy_gpus) +
                                   "}");
    last_busy_gpus_ = busy_gpus;
  }
  if (pending != last_pending_) {
    recorder_->add_counter_sim("pending_jobs", now_s, 0,
                               "{\"jobs\": " + std::to_string(pending) + "}");
    last_pending_ = pending;
  }
}

void TelemetryObserver::on_tick(const SimTick& tick) {
  if (tick.scheduled) {
    ++sched_rounds_;
    add_event(tick.now_s, "sched_round",
              "\"round\": " + std::to_string(sched_rounds_));
  }
  observe_tick(tick, /*final_tick=*/false);
}

void TelemetryObserver::on_run_end(const SimTick& tick) {
  observe_tick(tick, /*final_tick=*/true);
  // Episodes still open when the run drains get closed at the final tick.
  for (const auto& [node, begin_s] : open_outages_)
    recorder_->add_complete_sim("outage", "fault", begin_s, tick.now_s,
                                kFaultTidBase + node);
  open_outages_.clear();
  for (const auto& [node, begin_s] : open_stragglers_)
    recorder_->add_complete_sim("straggler", "fault", begin_s, tick.now_s,
                                kStragglerTidBase + node);
  open_stragglers_.clear();
  std::uint64_t reconfigs = 0;
  for (const auto& [id, st] : jobs_) {
    reconfigs += static_cast<std::uint64_t>(st.reconfig_count);
  }
  std::string fields = "\"sched_rounds\": " + std::to_string(sched_rounds_) +
                       ", \"reconfigs\": " + std::to_string(reconfigs) +
                       ", \"spans\": " + std::to_string(spans_.size());
  if (fault_count_ > 0)
    fields += ", \"faults\": " + std::to_string(fault_count_);
  add_event(tick.now_s, "run_end", fields);
}

void TelemetryObserver::write_events_jsonl(std::ostream& os) const {
  for (const std::string& line : events_) os << line << "\n";
}

}  // namespace rubick
