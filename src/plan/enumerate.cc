#include "plan/enumerate.h"

#include <algorithm>

#include "common/error.h"

namespace rubick {

namespace {

// GA step counts considered; larger accumulation rarely helps and inflates
// the search space.
constexpr int kGaChoices[] = {1, 2, 4, 8, 16};

void push_if_valid(std::vector<ExecutionPlan>& out, const ModelSpec& model,
                   int global_batch, ExecutionPlan plan) {
  if (plan.valid_for(model, global_batch)) out.push_back(plan);
}

}  // namespace

std::vector<ExecutionPlan> enumerate_candidate_plans(
    const ModelSpec& model, int global_batch,
    const PlanConstraints& constraints) {
  RUBICK_CHECK(constraints.num_gpus >= 1);
  const int g = constraints.num_gpus;
  std::vector<ExecutionPlan> out;

  // --- DP family: plain DP, ZeRO-2, ZeRO-3, ZeRO-Offload, each x GA x GC.
  for (ZeroStage zero : {ZeroStage::kNone, ZeroStage::kZeroDp,
                         ZeroStage::kZero3, ZeroStage::kOffload}) {
    for (int a : kGaChoices) {
      for (bool gc : {false, true}) {
        ExecutionPlan p;
        p.dp = g;
        p.ga_steps = a;
        p.zero = zero;
        p.grad_ckpt = gc;
        push_if_valid(out, model, global_batch, p);
      }
    }
  }

  // --- Model-parallel combinations (TP / PP / full 3D). ---
  const bool mp_allowed =
      constraints.allow_model_parallel && model.allow_model_parallel;
  if (mp_allowed) {
    for (int t = 1; t <= std::min(g, constraints.max_tp); ++t) {
      if (g % t != 0) continue;
      // valid_for() additionally requires hidden_size % t == 0.
      const int rest = g / t;
      for (int p = 1; p <= rest; ++p) {
        if (rest % p != 0) continue;
        const int d = rest / p;
        if (t == 1 && p == 1) continue;  // plain DP covered above
        if (p == 1) {
          for (bool gc : {false, true})
            push_if_valid(out, model, global_batch,
                          ExecutionPlan{.dp = d,
                                        .tp = t,
                                        .pp = 1,
                                        .ga_steps = 1,
                                        .micro_batches = 1,
                                        .zero = ZeroStage::kNone,
                                        .grad_ckpt = gc});
          // TP can also accumulate gradients to shrink activations.
          for (int a : kGaChoices) {
            if (a == 1) continue;
            push_if_valid(out, model, global_batch,
                          ExecutionPlan{.dp = d,
                                        .tp = t,
                                        .pp = 1,
                                        .ga_steps = a,
                                        .micro_batches = 1,
                                        .zero = ZeroStage::kNone,
                                        .grad_ckpt = false});
          }
        } else {
          for (int m : {p, 2 * p, 4 * p}) {
            for (bool gc : {false, true}) {
              ExecutionPlan plan{.dp = d,
                                 .tp = t,
                                 .pp = p,
                                 .ga_steps = 1,
                                 .micro_batches = m,
                                 .zero = ZeroStage::kNone,
                                 .grad_ckpt = gc};
              push_if_valid(out, model, global_batch, plan);
            }
          }
        }
      }
    }
  }
  return out;
}

std::vector<ExecutionPlan> enumerate_plans(const ModelSpec& model,
                                           int global_batch,
                                           const PlanConstraints& constraints,
                                           const MemoryEstimator& estimator) {
  std::vector<ExecutionPlan> candidates =
      enumerate_candidate_plans(model, global_batch, constraints);
  std::vector<ExecutionPlan> out;
  out.reserve(candidates.size());
  for (const auto& plan : candidates)
    if (estimator.fits(model, plan, global_batch, constraints.budget))
      out.push_back(plan);
  return out;
}

}  // namespace rubick
