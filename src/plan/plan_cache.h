// PlanSetCache: process-wide arena cache of enumerated candidate plan sets.
//
// The scheduling hot path asks "which plans may this job run with exactly g
// GPUs?" thousands of times per round — once per (GPU count, CPU count)
// coordinate of every sensitivity-curve chain. The answer depends only on
// (model, global batch, g, max TP, model-parallel gate, estimator
// coefficients, memory-budget class) — NOT on the CPU count — yet the
// enumerator used to re-walk the plan space and re-run the memory estimator
// per query, heap-allocating a fresh vector every time.
//
// PlanSetCache computes each candidate set once and stores it in contiguous
// arena storage for the life of the process; queries return a PlanSpan (a
// non-owning pointer+length view), so steady-state lookups allocate
// nothing. Three levels share the work:
//
//   1. enumerated   — all structurally valid, batch-divisible plans for a
//                     (model, batch, gpus, max_tp, allow_mp) key;
//   2. measured     — per-plan GPU/host memory demands for an estimator
//                     coefficient fingerprint (demands are independent of
//                     the budget, so they are computed once and compared
//                     against any budget later);
//   3. filtered     — the memory-feasible subset for a concrete budget
//                     class (gpu/host capacity pair). Feasibility is
//                     monotone in the budget: a plan infeasible at budget B
//                     is infeasible at any budget component-wise <= B, so a
//                     new budget class filters from the smallest already-
//                     cached superset list instead of the full set.
//
// Restricted plan spaces (the ablation selectors) reuse the same arena via
// memoized(): an opaque compute callback keyed by the selector's interned
// id runs at most once per key.
//
// CONCURRENCY: shard-locked like the predictor's memo caches. Values are
// deterministic functions of the key, racers compute identical lists and
// the first writer wins; spans stay valid forever (arena storage is never
// moved or freed). The cache is process-wide by design — candidate sets
// are pure functions of model structure, so sharing across predictors,
// policies and simulator runs is sound and is what makes repeated
// scheduling rounds allocation-free.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "model/model_spec.h"
#include "plan/enumerate.h"
#include "plan/execution_plan.h"
#include "plan/memory_estimator.h"

namespace rubick {

// Non-owning view over an immutable cached candidate list. Order matches
// enumerate_plans() exactly (DP-family first, then 3D combinations).
struct PlanSpan {
  const ExecutionPlan* data = nullptr;
  std::size_t count = 0;

  const ExecutionPlan* begin() const { return data; }
  const ExecutionPlan* end() const { return data + count; }
  std::size_t size() const { return count; }
  bool empty() const { return count == 0; }
  const ExecutionPlan& operator[](std::size_t i) const { return data[i]; }
};

// Per-plan memory demand, budget-independent (level 2).
struct PlanDemand {
  std::uint64_t gpu_bytes = 0;   // per worst GPU
  std::uint64_t host_bytes = 0;  // across all workers
};

// Cumulative tallies (telemetry; surfaced by bench_micro_scheduler and the
// policy's round-end gauges).
struct PlanCacheStats {
  std::uint64_t hits = 0;            // feasible-set lookups served cached
  std::uint64_t misses = 0;          // feasible-set lookups that computed
  std::uint64_t enumerations = 0;    // level-1 plan-space walks
  std::uint64_t budget_pruned = 0;   // filters seeded from a superset list

  std::uint64_t lookups() const { return hits + misses; }
  double hit_rate() const {
    const std::uint64_t n = lookups();
    return n == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(n);
  }
};

class PlanSetCache {
 public:
  // Process-wide instance (never destroyed; spans it returns stay valid for
  // the life of the process).
  static PlanSetCache& global();

  PlanSetCache() = default;
  PlanSetCache(const PlanSetCache&) = delete;
  PlanSetCache& operator=(const PlanSetCache&) = delete;

  // Memory-feasible candidate set for the FULL plan space under
  // `constraints` — identical in content and order to
  // enumerate_plans(model, global_batch, constraints, estimator).
  PlanSpan full_feasible(const ModelSpec& model, int global_batch,
                         const PlanConstraints& constraints,
                         const MemoryEstimator& estimator);

  // Memoized pass-through for restricted plan spaces (ablation selectors).
  // `space_id` is the selector's interned identity; `compute` must be a
  // deterministic function of the other key fields and runs at most once
  // per distinct key (first writer wins under races).
  PlanSpan memoized(std::uint32_t space_id, const ModelSpec& model,
                    int global_batch, const PlanConstraints& constraints,
                    const MemoryEstimator& estimator,
                    const std::function<std::vector<ExecutionPlan>()>& compute);

  PlanCacheStats stats() const;
  // Number of cached candidate lists across all levels (diagnostic).
  std::size_t size() const;

 private:
  // Identity of a (plan space, model, batch, gpus, max_tp, mp-gate,
  // estimator) group; budget classes hang off the group as variants.
  struct GroupKey {
    std::uint64_t model_fp = 0;  // name id + structural fields
    std::uint64_t est_fp = 0;    // MemoryEstimator::fingerprint()
    std::uint32_t space_id = 0;  // 0 = full enumeration
    std::int32_t batch = 0;
    std::int32_t gpus = 0;
    std::int32_t max_tp = 0;
    bool allow_mp = false;

    friend bool operator==(const GroupKey&, const GroupKey&) = default;
  };
  struct GroupKeyHash {
    std::size_t operator()(const GroupKey& k) const noexcept;
  };

  struct Variant {
    std::uint64_t gpu_cap = 0;
    std::uint64_t host_cap = 0;
    const std::vector<ExecutionPlan>* plans = nullptr;
    const std::vector<PlanDemand>* demands = nullptr;  // nullptr: memoized()
  };
  struct Group {
    // Level 1+2 (full space only): every valid plan with its demands.
    const std::vector<ExecutionPlan>* all = nullptr;
    const std::vector<PlanDemand>* all_demands = nullptr;
    // Level 3: one entry per budget class seen (usually exactly one).
    std::vector<Variant> variants;
  };
  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<GroupKey, Group, GroupKeyHash> groups;  // guarded by mu
    std::deque<std::vector<ExecutionPlan>> plan_arena;         // guarded by mu
    std::deque<std::vector<PlanDemand>> demand_arena;          // guarded by mu
    mutable PlanCacheStats stats;                              // guarded by mu
  };

  static std::uint64_t model_fingerprint(const ModelSpec& model);
  Shard& shard_for(const GroupKey& key) const;

  static constexpr std::size_t kShards = 16;
  mutable std::array<Shard, kShards> shards_;
};

}  // namespace rubick
