#include "plan/plan_cache.h"

#include <algorithm>
#include <limits>

#include "common/intern.h"

namespace rubick {

namespace {

inline void fnv_mix(std::uint64_t& h, std::uint64_t v) {
  h ^= v;
  h *= 1099511628211ull;
}

}  // namespace

std::size_t PlanSetCache::GroupKeyHash::operator()(
    const GroupKey& k) const noexcept {
  std::uint64_t h = 1469598103934665603ull;
  fnv_mix(h, k.model_fp);
  fnv_mix(h, k.est_fp);
  fnv_mix(h, k.space_id);
  fnv_mix(h, static_cast<std::uint32_t>(k.batch));
  fnv_mix(h, static_cast<std::uint32_t>(k.gpus));
  fnv_mix(h, static_cast<std::uint32_t>(k.max_tp));
  fnv_mix(h, k.allow_mp ? 1u : 0u);
  return static_cast<std::size_t>(h);
}

std::uint64_t PlanSetCache::model_fingerprint(const ModelSpec& model) {
  // Interned name id plus every structural field the enumerator or the
  // memory estimator reads, so two distinct specs sharing a name (tests
  // build ad-hoc models) never alias.
  std::uint64_t h = 1469598103934665603ull;
  fnv_mix(h, intern_key_string_cached(model.name));
  fnv_mix(h, model.param_count);
  fnv_mix(h, static_cast<std::uint32_t>(model.seq_len));
  fnv_mix(h, static_cast<std::uint32_t>(model.hidden_size));
  fnv_mix(h, static_cast<std::uint32_t>(model.num_layers));
  fnv_mix(h, model.allow_model_parallel ? 1u : 0u);
  return h;
}

PlanSetCache::Shard& PlanSetCache::shard_for(const GroupKey& key) const {
  return shards_[GroupKeyHash{}(key) % kShards];
}

PlanSetCache& PlanSetCache::global() {
  // Leaked on purpose: spans handed out must outlive every static consumer
  // regardless of destruction order.
  static PlanSetCache* cache = new PlanSetCache();
  return *cache;
}

PlanSpan PlanSetCache::full_feasible(const ModelSpec& model, int global_batch,
                                     const PlanConstraints& constraints,
                                     const MemoryEstimator& estimator) {
  GroupKey key;
  key.model_fp = model_fingerprint(model);
  key.est_fp = estimator.fingerprint();
  key.space_id = 0;
  key.batch = global_batch;
  key.gpus = constraints.num_gpus;
  key.max_tp = constraints.max_tp;
  key.allow_mp = constraints.allow_model_parallel;
  const std::uint64_t gpu_cap = constraints.budget.gpu_capacity_bytes;
  const std::uint64_t host_cap = constraints.budget.host_capacity_bytes;

  Shard& shard = shard_for(key);

  // Fast path: the budget class is already filtered.
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.groups.find(key);
    if (it != shard.groups.end()) {
      for (const Variant& v : it->second.variants) {
        if (v.gpu_cap == gpu_cap && v.host_cap == host_cap) {
          ++shard.stats.hits;
          return PlanSpan{v.plans->data(), v.plans->size()};
        }
      }
    }
  }

  // Miss. Enumerate + measure outside the lock if the group itself is new
  // (racers compute identical lists; the first insert wins).
  std::vector<ExecutionPlan> all;
  std::vector<PlanDemand> demands;
  bool computed_all = false;
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.groups.find(key);
    if (it == shard.groups.end() || it->second.all == nullptr)
      computed_all = true;  // decided under the lock, computed outside
  }
  if (computed_all) {
    all = enumerate_candidate_plans(model, global_batch, constraints);
    demands.reserve(all.size());
    for (const ExecutionPlan& plan : all)
      demands.push_back(PlanDemand{
          estimator.gpu_bytes(model, plan, global_batch),
          estimator.host_bytes(model, plan)});
  }

  std::lock_guard<std::mutex> lock(shard.mu);
  Group& group = shard.groups[key];
  if (group.all == nullptr) {
    if (!computed_all) {
      // Another thread erased... cannot happen (no eviction); but if we
      // skipped computing because the group existed, `all` is already
      // present — nothing to do.
    } else {
      shard.plan_arena.push_back(std::move(all));
      shard.demand_arena.push_back(std::move(demands));
      group.all = &shard.plan_arena.back();
      group.all_demands = &shard.demand_arena.back();
      ++shard.stats.enumerations;
    }
  }
  // Re-check the budget class (a racer may have filtered it meanwhile).
  for (const Variant& v : group.variants) {
    if (v.gpu_cap == gpu_cap && v.host_cap == host_cap) {
      ++shard.stats.hits;
      return PlanSpan{v.plans->data(), v.plans->size()};
    }
  }
  ++shard.stats.misses;

  // Budget-monotonic pruning: filter from the smallest cached list whose
  // budget dominates this one — plans it already rejected cannot become
  // feasible at a smaller budget.
  const std::vector<ExecutionPlan>* source = group.all;
  const std::vector<PlanDemand>* source_demands = group.all_demands;
  std::size_t best_size = std::numeric_limits<std::size_t>::max();
  for (const Variant& v : group.variants) {
    if (v.demands == nullptr) continue;
    if (v.gpu_cap >= gpu_cap && v.host_cap >= host_cap &&
        v.plans->size() < best_size) {
      source = v.plans;
      source_demands = v.demands;
      best_size = v.plans->size();
    }
  }
  if (source != group.all) ++shard.stats.budget_pruned;

  std::vector<ExecutionPlan> filtered;
  std::vector<PlanDemand> filtered_demands;
  for (std::size_t i = 0; i < source->size(); ++i) {
    const PlanDemand& d = (*source_demands)[i];
    if (d.gpu_bytes <= gpu_cap && d.host_bytes <= host_cap) {
      filtered.push_back((*source)[i]);
      filtered_demands.push_back(d);
    }
  }
  shard.plan_arena.push_back(std::move(filtered));
  shard.demand_arena.push_back(std::move(filtered_demands));
  Variant variant;
  variant.gpu_cap = gpu_cap;
  variant.host_cap = host_cap;
  variant.plans = &shard.plan_arena.back();
  variant.demands = &shard.demand_arena.back();
  group.variants.push_back(variant);
  return PlanSpan{variant.plans->data(), variant.plans->size()};
}

PlanSpan PlanSetCache::memoized(
    std::uint32_t space_id, const ModelSpec& model, int global_batch,
    const PlanConstraints& constraints, const MemoryEstimator& estimator,
    const std::function<std::vector<ExecutionPlan>()>& compute) {
  GroupKey key;
  key.model_fp = model_fingerprint(model);
  key.est_fp = estimator.fingerprint();
  key.space_id = space_id;
  key.batch = global_batch;
  key.gpus = constraints.num_gpus;
  key.max_tp = constraints.max_tp;
  key.allow_mp = constraints.allow_model_parallel;
  const std::uint64_t gpu_cap = constraints.budget.gpu_capacity_bytes;
  const std::uint64_t host_cap = constraints.budget.host_capacity_bytes;

  Shard& shard = shard_for(key);
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.groups.find(key);
    if (it != shard.groups.end()) {
      for (const Variant& v : it->second.variants) {
        if (v.gpu_cap == gpu_cap && v.host_cap == host_cap) {
          ++shard.stats.hits;
          return PlanSpan{v.plans->data(), v.plans->size()};
        }
      }
    }
  }

  std::vector<ExecutionPlan> plans = compute();  // outside the lock

  std::lock_guard<std::mutex> lock(shard.mu);
  Group& group = shard.groups[key];
  for (const Variant& v : group.variants) {
    if (v.gpu_cap == gpu_cap && v.host_cap == host_cap) {
      ++shard.stats.hits;
      return PlanSpan{v.plans->data(), v.plans->size()};
    }
  }
  ++shard.stats.misses;
  shard.plan_arena.push_back(std::move(plans));
  Variant variant;
  variant.gpu_cap = gpu_cap;
  variant.host_cap = host_cap;
  variant.plans = &shard.plan_arena.back();
  group.variants.push_back(variant);
  return PlanSpan{variant.plans->data(), variant.plans->size()};
}

PlanCacheStats PlanSetCache::stats() const {
  PlanCacheStats total;
  for (const Shard& s : shards_) {
    std::lock_guard<std::mutex> lock(s.mu);
    total.hits += s.stats.hits;
    total.misses += s.stats.misses;
    total.enumerations += s.stats.enumerations;
    total.budget_pruned += s.stats.budget_pruned;
  }
  return total;
}

std::size_t PlanSetCache::size() const {
  std::size_t n = 0;
  for (const Shard& s : shards_) {
    std::lock_guard<std::mutex> lock(s.mu);
    n += s.plan_arena.size();
  }
  return n;
}

}  // namespace rubick
