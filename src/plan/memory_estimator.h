// Analytic GPU / host memory estimator.
//
// Stands in for the DeepSpeed/Megatron memory estimators the paper relies on
// ("Rubick relies on the inherent capability of DeepSpeed and Megatron to
// estimate the memory consumption", §6). Feasibility (GPU OOM, host-memory
// fit) gates which execution plans are valid for a given allocation — e.g.
// only ZeRO-Offload can train LLaMA-2-7B on a single GPU, and LLaMA-30B
// needs >= 12 GPUs with 3D parallelism.
//
// Accounting (mixed-precision Adam, bytes per parameter):
//   fp16 weights 2 + fp16 grads 2 + fp32 master 4 + Adam moments 8 = 16
// partitioned according to the plan:
//   3D parallelism : all states / (tp*pp)
//   ZeRO-DP (ZeRO-2): weights + grad working set resident, optimizer /dp
//   ZeRO-Offload    : weights + a streaming bucket on GPU; grads + optimizer
//                     states live in host memory, updates run on CPU.
// Activations scale with the per-pass micro-batch; gradient checkpointing
// keeps only layer-boundary tensors plus one layer's working set; 1F1B
// pipelining keeps up to `pp` micro-batches in flight on the worst stage.
#pragma once

#include <cstdint>

#include "model/model_spec.h"
#include "plan/execution_plan.h"

namespace rubick {

struct MemoryEstimate {
  std::uint64_t gpu_bytes_per_gpu = 0;   // worst GPU in the job
  std::uint64_t host_bytes_total = 0;    // across all workers of the job
  bool feasible = false;                 // against the budget passed in
};

struct MemoryBudget {
  std::uint64_t gpu_capacity_bytes;   // per GPU (A800: 80 GB)
  std::uint64_t host_capacity_bytes;  // available to this job across nodes
};

class MemoryEstimator {
 public:
  // Tunable coefficients, exposed so tests can probe sensitivity.
  struct Coefficients {
    // Fixed per-GPU framework overhead (CUDA context, NCCL, workspaces).
    std::uint64_t framework_overhead_bytes = 4ull << 30;
    // Bytes of activation per (sample * token * hidden) without GC.
    double act_bytes_per_token_hidden = 24.0;
    // Bytes kept per (sample * token * hidden * layer) under GC
    // (layer-boundary checkpoint tensors).
    double ckpt_bytes_per_token_hidden = 4.0;
    // ZeRO-Offload GPU-side streaming bucket.
    std::uint64_t offload_bucket_bytes = 2ull << 30;
    // Allocator fragmentation, NCCL/cuBLAS workspaces and transient fp32
    // buffers, as a multiplier on model states. At 1.25, a 30B model's
    // 60 GB 8-way shard no longer squeezes into an 80 GB GPU even with
    // GC + pipelining — reproducing the paper's >= 12-GPU minimum for
    // LLaMA-30B (Table 2) while leaving LLaMA-2-7B trainable on one GPU
    // via ZeRO-Offload.
    double state_fragmentation = 1.25;
    // Host-side per-worker overhead (data pipeline, framework).
    std::uint64_t host_overhead_per_worker_bytes = 4ull << 30;
  };

  MemoryEstimator() = default;
  explicit MemoryEstimator(const Coefficients& c) : coeff_(c) {}

  // Per-GPU device memory demand for running `plan` on `model` with the
  // given global batch. Independent of the budget.
  std::uint64_t gpu_bytes(const ModelSpec& model, const ExecutionPlan& plan,
                          int global_batch) const;

  // Total host-memory demand of the job (all workers).
  std::uint64_t host_bytes(const ModelSpec& model,
                           const ExecutionPlan& plan) const;

  MemoryEstimate estimate(const ModelSpec& model, const ExecutionPlan& plan,
                          int global_batch, const MemoryBudget& budget) const;

  bool fits(const ModelSpec& model, const ExecutionPlan& plan,
            int global_batch, const MemoryBudget& budget) const {
    return estimate(model, plan, global_batch, budget).feasible;
  }

  const Coefficients& coefficients() const { return coeff_; }

  // Value fingerprint of the coefficient set. Two estimators with equal
  // coefficients produce identical demands for every (model, plan, batch),
  // so the fingerprint is a sound sharing key for memory-demand caches
  // (PlanSetCache keys measured candidate sets by it).
  std::uint64_t fingerprint() const;

 private:
  std::uint64_t activation_bytes(const ModelSpec& model,
                                 const ExecutionPlan& plan,
                                 int global_batch) const;

  Coefficients coeff_;
};

}  // namespace rubick
