// Execution plans — the reconfigurable dimension Rubick schedules.
//
// A plan combines (paper §3):
//   * Megatron-style 3D parallelism with sizes (d, t, p), d·t·p = #GPUs;
//   * the ZeRO series on top of DP (ZeRO-DP a.k.a. ZeRO-2, ZeRO-Offload);
//   * gradient accumulation (GA) and gradient checkpointing (GC), usable
//     with DP or the ZeRO series.
// Rubick reconfigures a job by switching among plan kinds and, for 3D
// parallelism, changing the (d, t, p) sizes; the global batch size stays
// fixed so training convergence is unaffected.
#pragma once

#include <cstdint>
#include <string>

namespace rubick {

struct ModelSpec;

// Memory-optimization family applied on top of data parallelism.
enum class ZeroStage {
  kNone,     // plain DP / 3D parallelism
  kZeroDp,   // ZeRO-2: optimizer states + gradients sliced across DP ranks
  kZero3,    // ZeRO-3: weights sliced too; parameters all-gathered per pass
  kOffload,  // ZeRO-Offload: states offloaded to host, CPU optimizer
};

const char* to_string(ZeroStage z);

struct ExecutionPlan {
  // 3D-parallel sizes. dp * tp * pp must equal the number of GPUs the plan
  // runs on. ZeRO plans require tp == pp == 1 (they are DP-based).
  int dp = 1;
  int tp = 1;
  int pp = 1;

  // Gradient accumulation steps (a in Table 1); 1 means no accumulation.
  int ga_steps = 1;

  // Number of pipeline micro-batches per iteration (m in Table 1). Must be
  // >= pp and divide the per-replica batch. Meaningful only when pp > 1.
  int micro_batches = 1;

  ZeroStage zero = ZeroStage::kNone;

  // Gradient checkpointing: recompute activations in the backward pass.
  bool grad_ckpt = false;

  int num_gpus() const { return dp * tp * pp; }

  bool uses_model_parallelism() const { return tp > 1 || pp > 1; }
  bool uses_offload() const { return zero == ZeroStage::kOffload; }

  // Samples each GPU processes per forward pass:
  //   global_batch / (dp * ga_steps)            for DP-family plans,
  //   global_batch / (dp * micro_batches)       for pipeline plans.
  // Returns 0 if the division is not exact (infeasible).
  int per_pass_batch(int global_batch) const;

  // Structural validity irrespective of a concrete model or memory limits:
  // positive sizes, ZeRO implies pure DP, GA and PP micro-batching are not
  // combined, micro_batches >= pp when pp > 1.
  bool structurally_valid() const;

  // Validity against a model: layer/hidden divisibility for PP/TP and batch
  // divisibility. (Memory feasibility is checked by the MemoryEstimator.)
  bool valid_for(const ModelSpec& model, int global_batch) const;

  // Human-readable name matching the paper's figures, e.g. "DP+GA",
  // "ZeRO-DP", "ZeRO-Offload+GC", "TP", "3D(d=4,t=4,p=2)".
  std::string display_name() const;

  friend bool operator==(const ExecutionPlan&, const ExecutionPlan&) = default;
};

// Convenience constructors for the plan families named in the paper.
ExecutionPlan make_dp(int dp, int ga_steps = 1, bool gc = false);
ExecutionPlan make_zero_dp(int dp, int ga_steps = 1, bool gc = false);
ExecutionPlan make_zero3(int dp, int ga_steps = 1, bool gc = false);
ExecutionPlan make_zero_offload(int dp, int ga_steps = 1, bool gc = false);
ExecutionPlan make_3d(int dp, int tp, int pp, int micro_batches = 0,
                      bool gc = false);  // micro_batches 0 -> 4*pp default

}  // namespace rubick
