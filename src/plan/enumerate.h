// Enumeration of candidate execution plans for a model under placement
// constraints. This is the search space GetBestPlan (paper Alg. 1) ranks
// with the performance model.
#pragma once

#include <vector>

#include "model/model_spec.h"
#include "plan/execution_plan.h"
#include "plan/memory_estimator.h"

namespace rubick {

struct PlanConstraints {
  int num_gpus = 1;
  // Largest tensor-parallel group that fits inside one node of the
  // placement (TP is restricted to intra-node links, paper §4.1).
  int max_tp = 8;
  MemoryBudget budget{80ull << 30, 1600ull << 30};
  // When false, ZeRO/GA/GC DP-family plans only (the paper disables TP/PP
  // for small models in the traces); combined with
  // ModelSpec::allow_model_parallel.
  bool allow_model_parallel = true;
};

// All structurally valid, batch-divisible, memory-feasible plans using
// exactly `constraints.num_gpus` GPUs. Deterministic order (DP-family
// first, then 3D combinations by (t, p, m), GC-less before GC).
std::vector<ExecutionPlan> enumerate_plans(const ModelSpec& model,
                                           int global_batch,
                                           const PlanConstraints& constraints,
                                           const MemoryEstimator& estimator);

// Like enumerate_plans but without the memory-feasibility filter; used by
// benches that sweep memory limits themselves.
std::vector<ExecutionPlan> enumerate_candidate_plans(
    const ModelSpec& model, int global_batch,
    const PlanConstraints& constraints);

}  // namespace rubick
