#include "plan/execution_plan.h"

#include <sstream>

#include "common/error.h"
#include "model/model_spec.h"

namespace rubick {

const char* to_string(ZeroStage z) {
  switch (z) {
    case ZeroStage::kNone:
      return "none";
    case ZeroStage::kZeroDp:
      return "ZeRO-DP";
    case ZeroStage::kZero3:
      return "ZeRO-3";
    case ZeroStage::kOffload:
      return "ZeRO-Offload";
  }
  return "?";
}

int ExecutionPlan::per_pass_batch(int global_batch) const {
  const int splits = pp > 1 ? dp * micro_batches : dp * ga_steps;
  if (splits <= 0 || global_batch % splits != 0) return 0;
  return global_batch / splits;
}

bool ExecutionPlan::structurally_valid() const {
  if (dp < 1 || tp < 1 || pp < 1 || ga_steps < 1 || micro_batches < 1)
    return false;
  // ZeRO variants are DP-based optimizations (paper §3).
  if (zero != ZeroStage::kNone && (tp != 1 || pp != 1)) return false;
  if (pp > 1) {
    // Pipeline plans use micro-batching instead of GA; m >= p keeps every
    // stage busy at least once.
    if (ga_steps != 1) return false;
    if (micro_batches < pp) return false;
  } else if (micro_batches != 1) {
    return false;
  }
  return true;
}

bool ExecutionPlan::valid_for(const ModelSpec& model, int global_batch) const {
  if (!structurally_valid()) return false;
  if (uses_model_parallelism() && !model.allow_model_parallel) return false;
  // TP partitions attention heads / MLP columns: hidden size must divide.
  if (model.hidden_size % tp != 0) return false;
  // PP places l/p layers per stage.
  if (model.num_layers % pp != 0) return false;
  // The global batch must split evenly into per-pass micro-batches.
  return per_pass_batch(global_batch) > 0;
}

std::string ExecutionPlan::display_name() const {
  std::ostringstream os;
  if (zero == ZeroStage::kZeroDp) {
    os << "ZeRO-DP";
  } else if (zero == ZeroStage::kZero3) {
    os << "ZeRO-3";
  } else if (zero == ZeroStage::kOffload) {
    os << "ZeRO-Offload";
  } else if (tp > 1 && pp > 1) {
    os << "3D(d=" << dp << ",t=" << tp << ",p=" << pp << ")";
  } else if (tp > 1) {
    os << (dp > 1 ? "TP+DP" : "TP");
    os << "(d=" << dp << ",t=" << tp << ")";
  } else if (pp > 1) {
    os << (dp > 1 ? "PP+DP" : "PP");
    os << "(d=" << dp << ",p=" << pp << ")";
  } else {
    os << "DP";
    if (dp > 1) os << "(d=" << dp << ")";
  }
  if (ga_steps > 1) os << "+GA";
  if (grad_ckpt) os << "+GC";
  return os.str();
}

ExecutionPlan make_dp(int dp, int ga_steps, bool gc) {
  ExecutionPlan p;
  p.dp = dp;
  p.ga_steps = ga_steps;
  p.grad_ckpt = gc;
  RUBICK_CHECK(p.structurally_valid());
  return p;
}

ExecutionPlan make_zero_dp(int dp, int ga_steps, bool gc) {
  ExecutionPlan p = make_dp(dp, ga_steps, gc);
  p.zero = ZeroStage::kZeroDp;
  return p;
}

ExecutionPlan make_zero3(int dp, int ga_steps, bool gc) {
  ExecutionPlan p = make_dp(dp, ga_steps, gc);
  p.zero = ZeroStage::kZero3;
  return p;
}

ExecutionPlan make_zero_offload(int dp, int ga_steps, bool gc) {
  ExecutionPlan p = make_dp(dp, ga_steps, gc);
  p.zero = ZeroStage::kOffload;
  return p;
}

ExecutionPlan make_3d(int dp, int tp, int pp, int micro_batches, bool gc) {
  ExecutionPlan p;
  p.dp = dp;
  p.tp = tp;
  p.pp = pp;
  p.micro_batches = pp > 1 ? (micro_batches > 0 ? micro_batches : 4 * pp) : 1;
  p.grad_ckpt = gc;
  RUBICK_CHECK_MSG(p.structurally_valid(),
                   "invalid 3D plan d=" << dp << " t=" << tp << " p=" << pp
                                        << " m=" << p.micro_batches);
  return p;
}

}  // namespace rubick
