#include "plan/memory_estimator.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "common/error.h"

namespace rubick {

std::uint64_t MemoryEstimator::activation_bytes(const ModelSpec& model,
                                                const ExecutionPlan& plan,
                                                int global_batch) const {
  const int b_pass = plan.per_pass_batch(global_batch);
  RUBICK_CHECK_MSG(b_pass > 0, "activation_bytes on infeasible batch split");

  const double tokens_hidden = static_cast<double>(b_pass) *
                               static_cast<double>(model.seq_len) *
                               static_cast<double>(model.hidden_size);
  // TP shards most activation tensors across t GPUs.
  const double tp_share = 1.0 / static_cast<double>(plan.tp);
  const int layers_per_stage = model.num_layers / plan.pp;

  double bytes = 0.0;
  if (plan.grad_ckpt) {
    // Only layer-boundary checkpoints persist, plus one layer's working set
    // which is recomputed on demand.
    bytes = coeff_.ckpt_bytes_per_token_hidden * tokens_hidden *
                layers_per_stage * tp_share +
            coeff_.act_bytes_per_token_hidden * tokens_hidden * tp_share;
  } else {
    bytes = coeff_.act_bytes_per_token_hidden * tokens_hidden *
            layers_per_stage * tp_share;
  }

  if (plan.pp > 1) {
    // 1F1B: the first stage keeps up to `pp` micro-batches of activations
    // in flight; we size for that worst stage.
    bytes *= static_cast<double>(std::min(plan.micro_batches, plan.pp));
  }
  return static_cast<std::uint64_t>(bytes);
}

std::uint64_t MemoryEstimator::gpu_bytes(const ModelSpec& model,
                                         const ExecutionPlan& plan,
                                         int global_batch) const {
  const std::uint64_t p2 = model.param_bytes_fp16();      // 2P
  const std::uint64_t opt = model.optimizer_state_bytes();  // 12P
  const auto d = static_cast<std::uint64_t>(plan.dp);
  const auto shard = static_cast<std::uint64_t>(plan.tp) *
                     static_cast<std::uint64_t>(plan.pp);

  std::uint64_t states = 0;
  switch (plan.zero) {
    case ZeroStage::kNone:
      // Full replica per DP rank, sharded by TP*PP: (2+2+12)P / (t*p).
      states = (p2 + p2 + opt) / shard;
      break;
    case ZeroStage::kZeroDp:
      // ZeRO-2: fp16 weights replicated; a full fp16 gradient working set is
      // resident until reduce-scatter retires it; optimizer states / d.
      states = p2 + p2 + opt / d;
      break;
    case ZeroStage::kZero3:
      // ZeRO-3: everything sliced across DP ranks; parameters are
      // all-gathered layer by layer, leaving a prefetch working set of a
      // few layers resident on top of the 16P/d partition.
      states = (p2 + p2 + opt) / d +
               4ull * (p2 / static_cast<std::uint64_t>(
                                std::max(1, model.num_layers)));
      break;
    case ZeroStage::kOffload:
      // fp16 weights stay on GPU; gradients stream to the host through a
      // bucket, but with compute/transfer overlap roughly half of the fp16
      // gradient buffers are resident at peak (this is what keeps ~30B
      // models out of reach of an 80 GB GPU even with offload, matching the
      // paper's Table 2). Optimizer states live on the host.
      states = p2 + p2 / 2 + coeff_.offload_bucket_bytes;
      break;
  }
  states = static_cast<std::uint64_t>(static_cast<double>(states) *
                                      coeff_.state_fragmentation);
  return states + activation_bytes(model, plan, global_batch) +
         coeff_.framework_overhead_bytes;
}

std::uint64_t MemoryEstimator::host_bytes(const ModelSpec& model,
                                          const ExecutionPlan& plan) const {
  const auto workers = static_cast<std::uint64_t>(plan.num_gpus());
  std::uint64_t bytes = coeff_.host_overhead_per_worker_bytes * workers;
  if (plan.zero == ZeroStage::kOffload) {
    // fp32 optimizer states (12P) plus fp16 gradient copies (2P) live in
    // host memory, partitioned across (and summed over) the DP ranks.
    bytes += model.optimizer_state_bytes() + model.param_bytes_fp16();
  }
  return bytes;
}

std::uint64_t MemoryEstimator::fingerprint() const {
  // FNV-1a over the coefficient values (doubles by bit pattern).
  std::uint64_t h = 1469598103934665603ull;
  const auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 1099511628211ull;
  };
  const auto mix_double = [&](double v) {
    std::uint64_t bits;
    static_assert(sizeof(bits) == sizeof(v));
    std::memcpy(&bits, &v, sizeof(bits));
    mix(bits);
  };
  mix(coeff_.framework_overhead_bytes);
  mix_double(coeff_.act_bytes_per_token_hidden);
  mix_double(coeff_.ckpt_bytes_per_token_hidden);
  mix(coeff_.offload_bucket_bytes);
  mix_double(coeff_.state_fragmentation);
  mix(coeff_.host_overhead_per_worker_bytes);
  return h;
}

MemoryEstimate MemoryEstimator::estimate(const ModelSpec& model,
                                         const ExecutionPlan& plan,
                                         int global_batch,
                                         const MemoryBudget& budget) const {
  MemoryEstimate out;
  if (!plan.valid_for(model, global_batch)) return out;  // infeasible
  out.gpu_bytes_per_gpu = gpu_bytes(model, plan, global_batch);
  out.host_bytes_total = host_bytes(model, plan);
  out.feasible = out.gpu_bytes_per_gpu <= budget.gpu_capacity_bytes &&
                 out.host_bytes_total <= budget.host_capacity_bytes;
  return out;
}

}  // namespace rubick
