// Accuracy preservation under reconfiguration (paper §7.2, Fig. 9 /
// Table 3): training with different DP / GA partitionings of the same
// global batch — including a reconfiguration mid-run — changes the loss by
// less than changing the random seed does.
//
//   ./build/examples/accuracy_preservation
#include <cmath>
#include <iostream>

#include "common/table.h"
#include "convergence/dataset.h"
#include "convergence/trainer.h"

using namespace rubick;

int main() {
  const DatasetSplits data = make_synthetic_dataset(4096, 32, /*seed=*/11);
  Trainer trainer(data);

  TrainerConfig base;
  base.steps = 3000;
  base.seed = 1;
  base.phases = {{0, 1, 1}};  // single worker throughout

  TrainerConfig dp4 = base;
  dp4.phases = {{0, 4, 1}};  // 4-way data parallel

  TrainerConfig reconfig = base;
  reconfig.phases = {{0, 1, 1}, {1000, 4, 1}, {2000, 2, 2}};  // live reconfig

  TrainerConfig reseeded = base;
  reseeded.seed = 2;  // same plan, different seed

  const TrainResult r_base = trainer.train(base);
  const TrainResult r_dp4 = trainer.train(dp4);
  const TrainResult r_rcfg = trainer.train(reconfig);
  const TrainResult r_seed = trainer.train(reseeded);

  auto max_curve_diff = [](const TrainResult& a, const TrainResult& b) {
    double m = 0.0;
    for (std::size_t i = 0; i < a.loss_curve.size(); ++i)
      m = std::max(m, std::abs(a.loss_curve[i] - b.loss_curve[i]));
    return m;
  };

  TextTable table({"comparison vs baseline", "max train-loss diff",
                   "final val diff", "final test diff"});
  auto add = [&](const char* label, const TrainResult& r) {
    table.add_row(
        {label, TextTable::fmt(max_curve_diff(r_base, r), 4),
         TextTable::fmt(
             std::abs(r.final_validation_loss - r_base.final_validation_loss),
             4),
         TextTable::fmt(std::abs(r.final_test_loss - r_base.final_test_loss),
                        4)});
  };
  add("DP=4 (same seed)", r_dp4);
  add("reconfig 1->4->2x2 (same seed)", r_rcfg);
  add("same plan, new seed", r_seed);
  table.print(std::cout);

  std::cout << "\nReconfiguration rows should sit well below the seed row —\n"
               "keeping the global batch fixed preserves the training\n"
               "trajectory up to floating-point round-off.\n";
  return 0;
}
