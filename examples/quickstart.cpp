// Quickstart: fit a performance model for GPT-2 from a handful of profiled
// runs, then explore the reconfiguration space — predicted throughput of
// every plan family across GPU counts, the resource sensitivity curve, and
// the best plan per allocation (paper Figs. 3 and 6 in miniature).
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>
#include <iostream>

#include "cluster/cluster.h"
#include "common/table.h"
#include "core/plan_selector.h"
#include "core/predictor.h"
#include "model/model_spec.h"
#include "model/model_zoo.h"
#include "perf/analytic.h"
#include "perf/oracle.h"
#include "perf/perf_store.h"
#include "perf/profiler.h"
#include "plan/execution_plan.h"
#include "plan/memory_estimator.h"

using namespace rubick;

int main() {
  const ClusterSpec cluster;           // the paper's 8x8 A800 pod
  const GroundTruthOracle oracle(42);  // stands in for the real testbed
  const ModelSpec& model = find_model("GPT-2");
  const int batch = model.default_global_batch;

  // --- 1. Profile & fit (paper §4.3: >=7 sampled runs, 3 with offload). ---
  Profiler profiler(oracle, cluster);
  const Profiler::Result fit = profiler.profile_and_fit(model, batch);
  std::cout << "Fitted " << model.to_string() << " from "
            << fit.samples.size() << " profiled runs ("
            << fit.profiling_cost_s << " s simulated profiling)\n";
  std::cout << "  fit RMSLE = " << fit.model.fit_error() << "\n\n";

  // --- 2. Validate predictions against held-out measurements. ---
  std::cout << "Prediction spot-check (plan @ 4 GPUs, 8 CPUs):\n";
  const PerfContext ctx = make_perf_context(cluster, 4, 8);
  for (const ExecutionPlan& plan :
       {make_dp(4), make_zero_dp(4), make_zero_offload(4), make_dp(4, 2),
        make_dp(4, 1, /*gc=*/true)}) {
    const double pred =
        fit.model.predict_throughput(model, plan, batch, ctx);
    const double meas = oracle.measure_throughput(model, plan, batch, ctx);
    std::printf("  %-24s predicted %8.2f  measured %8.2f  (%+5.1f%%)\n",
                plan.display_name().c_str(), pred, meas,
                100.0 * (pred - meas) / meas);
  }

  // --- 3. Resource sensitivity curve (paper Fig. 6). ---
  PerfModelStore store;
  store.add(fit.model);
  MemoryEstimator estimator;
  BestPlanPredictor predictor(cluster, store, estimator);
  FullPlanSelector all_plans;

  std::cout << "\nGPU sensitivity curve (best plan per GPU count):\n";
  TextTable table({"GPUs", "best plan", "pred. samples/s", "speedup vs 1"});
  const double base = predictor.envelope(model, batch, all_plans, 1, 8);
  for (int g : {1, 2, 4, 8, 16, 32}) {
    const auto best =
        predictor.best_canonical(model, batch, all_plans, g, 2 * g);
    table.add_row({std::to_string(g),
                   best.feasible ? best.plan.display_name() : "(infeasible)",
                   TextTable::fmt(best.throughput),
                   TextTable::fmt(predictor.envelope(model, batch, all_plans,
                                                     g, 2 * g) /
                                  base)});
  }
  table.print(std::cout);

  std::cout << "\nDone. See examples/cluster_scheduling.cpp for the full "
               "scheduler in action.\n";
  return 0;
}
