
#include "cluster/cluster.h"
#include "common/stats.h"
#include "core/scheduler.h"
#include "perf/oracle.h"
#include "perf/perf_store.h"
#include "trace/job.h"
// Cluster scheduling end-to-end: generate a Philly-like trace, run it
// through Rubick and the baselines on the simulated 64-GPU cluster, and
// compare JCT / makespan (a miniature of the paper's Table 4).
//
//   ./build/examples/cluster_scheduling [num_jobs] [seed]
#include <cstdlib>
#include <iostream>
#include <memory>

#include "baselines/sia.h"
#include "baselines/synergy.h"
#include "baselines/tiresias.h"
#include "common/table.h"
#include "common/units.h"
#include "core/rubick_policy.h"
#include "sim/simulator.h"
#include "trace/trace_gen.h"

using namespace rubick;

int main(int argc, char** argv) {
  const int num_jobs = argc > 1 ? std::atoi(argv[1]) : 60;
  const std::uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 7;

  const ClusterSpec cluster;
  const GroundTruthOracle oracle(2025);
  TraceGenerator gen(cluster, oracle);

  TraceOptions opts;
  opts.seed = seed;
  opts.num_jobs = num_jobs;
  opts.window_s = hours(3);
  const std::vector<JobSpec> jobs = gen.generate(opts);
  std::cout << "Generated " << jobs.size() << " jobs over "
            << to_hours(opts.window_s) << " h\n";

  // Fit performance models once and share them across policies so every
  // scheduler sees identical predictions.
  std::vector<std::string> names;
  for (const auto& j : jobs) names.push_back(j.model_name);
  std::map<std::string, double> prof_costs;
  const PerfModelStore store =
      PerfModelStore::profile_models(oracle, cluster, names, 0, &prof_costs);

  Simulator sim(cluster, oracle);

  TextTable table({"scheduler", "avg JCT (h)", "P99 JCT (h)", "makespan (h)",
                   "reconfigs"});
  auto run = [&](SchedulerPolicy& policy) {
    std::cout << "running " << policy.name() << "...\n" << std::flush;
    const SimResult r = sim.run(jobs, policy, RunContext{&store, &prof_costs});
    int reconfigs = 0;
    for (const auto& jr : r.jobs) reconfigs += jr.reconfig_count;
    const Summary s = r.jct_summary();
    table.add_row({policy.name(), TextTable::fmt(to_hours(s.mean)),
                   TextTable::fmt(to_hours(s.p99)),
                   TextTable::fmt(to_hours(r.makespan_s)),
                   std::to_string(reconfigs)});
  };

  RubickPolicy rubick;
  SiaPolicy sia;
  SynergyPolicy synergy;
  TiresiasPolicy tiresias;
  run(rubick);
  run(sia);
  run(synergy);
  run(tiresias);

  table.print(std::cout);
  return 0;
}
