// Reconfiguration walkthrough (paper Fig. 7): a LLaMA-2-7B job adapts its
// execution plan as the available resources shrink from 32 GPUs across four
// nodes down to a single GPU, then gets its CPUs doubled under
// ZeRO-Offload.
//
//   ./build/examples/reconfiguration_demo
#include <iostream>

#include "cluster/cluster.h"
#include "common/table.h"
#include "core/plan_selector.h"
#include "core/predictor.h"
#include "model/model_spec.h"
#include "model/model_zoo.h"
#include "perf/analytic.h"
#include "perf/oracle.h"
#include "perf/perf_store.h"
#include "perf/profiler.h"
#include "plan/memory_estimator.h"

using namespace rubick;

int main() {
  const ClusterSpec cluster;
  const GroundTruthOracle oracle(2025);
  const ModelSpec& model = find_model("LLaMA-2-7B");
  const int batch = model.default_global_batch;

  Profiler profiler(oracle, cluster);
  PerfModelStore store;
  store.add(profiler.profile_and_fit(model, batch).model);

  MemoryEstimator estimator;
  BestPlanPredictor predictor(cluster, store, estimator);
  FullPlanSelector all_plans;

  struct Stage {
    const char* label;
    int gpus;
    int cpus;
    int max_tp;       // GPUs per node in this stage
    bool multi_node;
  };
  const Stage stages[] = {
      {"4 nodes x 8 GPUs", 32, 64, 8, true},
      {"4 nodes x 4 GPUs", 16, 32, 4, true},
      {"1 node, 4 GPUs", 4, 8, 4, false},
      {"1 GPU", 1, 8, 1, false},
      {"1 GPU, 2x CPUs", 1, 16, 1, false},
  };

  std::cout << "Rubick reconfiguring LLaMA-2-7B under shrinking limits:\n\n";
  TextTable table({"stage", "chosen plan", "pred. samples/s", "measured"});
  for (const Stage& s : stages) {
    const auto best = predictor.best_exact(model, batch, all_plans, s.gpus,
                                           s.cpus, s.max_tp, s.multi_node);
    if (!best.feasible) {
      table.add_row({s.label, "(no feasible plan)", "-", "-"});
      continue;
    }
    PerfContext ctx = make_perf_context(cluster, s.gpus, s.cpus);
    ctx.multi_node = s.multi_node;
    const double measured =
        oracle.measure_throughput(model, best.plan, batch, ctx);
    table.add_row({s.label, best.plan.display_name(),
                   TextTable::fmt(best.throughput),
                   TextTable::fmt(measured)});
  }
  table.print(std::cout);

  std::cout << "\nNote the switch to ZeRO-Offload at 1 GPU (the only\n"
               "feasible plan) and the speedup from doubling its CPUs.\n";
  return 0;
}
