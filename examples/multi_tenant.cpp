// Multi-tenant scheduling walkthrough (paper §5.1): Tenant-A owns a 64-GPU
// quota and submits guaranteed jobs; Tenant-B has no quota and runs
// best-effort. Rubick guarantees Tenant-A's jobs the performance of their
// requested configuration (often with fewer GPUs and a better plan) and
// gives the reclaimed capacity to Tenant-B — compare with AntMan, which
// guarantees the literal resources.
//
//   ./build/examples/multi_tenant
#include <iostream>

#include "baselines/antman.h"
#include "cluster/cluster.h"
#include "common/stats.h"
#include "common/table.h"
#include "common/units.h"
#include "core/rubick_policy.h"
#include "core/scheduler.h"
#include "perf/oracle.h"
#include "sim/simulator.h"
#include "telemetry/timeline.h"
#include "trace/trace_gen.h"

using namespace rubick;

int main() {
  const ClusterSpec cluster;
  const GroundTruthOracle oracle(2025);
  const TraceGenerator gen(cluster, oracle);

  TraceOptions opts;
  opts.seed = 21;
  opts.num_jobs = 120;
  opts.window_s = hours(6);
  opts.variant = TraceVariant::kMultiTenant;
  const auto jobs = gen.generate(opts);

  int guaranteed = 0;
  for (const auto& j : jobs) guaranteed += j.guaranteed ? 1 : 0;
  std::cout << "Trace: " << jobs.size() << " jobs over "
            << to_hours(opts.window_s) << " h — " << guaranteed
            << " guaranteed (Tenant-A, 64-GPU quota), "
            << jobs.size() - guaranteed << " best-effort (Tenant-B)\n\n";

  Simulator sim(cluster, oracle);
  TextTable table({"scheduler", "class", "avg JCT (h)", "P99 JCT (h)",
                   "SLA met*"});

  auto run = [&](SchedulerPolicy& policy) {
    const SimResult r = sim.run(jobs, policy);
    auto add = [&](const char* cls, bool want_guaranteed) {
      const Summary s = r.jct_summary_where(want_guaranteed);
      int met = 0, total = 0;
      for (const auto& j : r.jobs) {
        if (!j.finished || j.spec.guaranteed != want_guaranteed) continue;
        if (j.baseline_throughput <= 0.0) continue;
        ++total;
        if (j.achieved_throughput >= 0.9 * j.baseline_throughput) ++met;
      }
      table.add_row({policy.name(), cls, TextTable::fmt(to_hours(s.mean)),
                     TextTable::fmt(to_hours(s.p99)),
                     std::to_string(met) + "/" + std::to_string(total)});
    };
    add("guaranteed", true);
    add("best-effort", false);

    std::cout << policy.name() << " utilization  ["
              << ClusterTimeline::sparkline(
                     r.timeline.utilization_buckets(48))
              << "]  avg "
              << TextTable::fmt(100.0 * r.timeline.average_utilization(), 0)
              << "%, avg queue "
              << TextTable::fmt(r.timeline.average_queue_length(), 1)
              << " jobs\n";
  };

  RubickConfig config;
  config.tenant_quota_gpus["tenant-a"] = 64;
  RubickPolicy rubick(config);
  AntManPolicy antman({{"tenant-a", 64}});
  run(rubick);
  run(antman);

  std::cout << "\n";
  table.print(std::cout);
  std::cout << "\n*jobs achieving >= 90% of their requested configuration's "
               "measured throughput\nwhile resident. Rubick guarantees "
               "performance, not literal resources — so it can\nrun "
               "guaranteed jobs on fewer GPUs with better plans and hand "
               "the slack to Tenant-B.\n";
  return 0;
}
