file(REMOVE_RECURSE
  "CMakeFiles/reconfiguration_demo.dir/reconfiguration_demo.cpp.o"
  "CMakeFiles/reconfiguration_demo.dir/reconfiguration_demo.cpp.o.d"
  "reconfiguration_demo"
  "reconfiguration_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reconfiguration_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
