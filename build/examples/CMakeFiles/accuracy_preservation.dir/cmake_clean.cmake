file(REMOVE_RECURSE
  "CMakeFiles/accuracy_preservation.dir/accuracy_preservation.cpp.o"
  "CMakeFiles/accuracy_preservation.dir/accuracy_preservation.cpp.o.d"
  "accuracy_preservation"
  "accuracy_preservation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/accuracy_preservation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
