# Empty compiler generated dependencies file for accuracy_preservation.
# This may be replaced when dependencies are built.
