# Empty dependencies file for bench_table2_prediction.
# This may be replaced when dependencies are built.
