file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_prediction.dir/bench_table2_prediction.cpp.o"
  "CMakeFiles/bench_table2_prediction.dir/bench_table2_prediction.cpp.o.d"
  "bench_table2_prediction"
  "bench_table2_prediction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_prediction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
