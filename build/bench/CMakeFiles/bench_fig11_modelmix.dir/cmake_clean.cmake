file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_modelmix.dir/bench_fig11_modelmix.cpp.o"
  "CMakeFiles/bench_fig11_modelmix.dir/bench_fig11_modelmix.cpp.o.d"
  "bench_fig11_modelmix"
  "bench_fig11_modelmix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_modelmix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
