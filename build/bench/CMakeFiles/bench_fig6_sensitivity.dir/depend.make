# Empty dependencies file for bench_fig6_sensitivity.
# This may be replaced when dependencies are built.
