# Empty compiler generated dependencies file for bench_fig8_two_jobs.
# This may be replaced when dependencies are built.
