file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_two_jobs.dir/bench_fig8_two_jobs.cpp.o"
  "CMakeFiles/bench_fig8_two_jobs.dir/bench_fig8_two_jobs.cpp.o.d"
  "bench_fig8_two_jobs"
  "bench_fig8_two_jobs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_two_jobs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
