# Empty compiler generated dependencies file for rubick_trace.
# This may be replaced when dependencies are built.
