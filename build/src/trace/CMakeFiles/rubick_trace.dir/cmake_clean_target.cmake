file(REMOVE_RECURSE
  "librubick_trace.a"
)
