file(REMOVE_RECURSE
  "CMakeFiles/rubick_trace.dir/job.cc.o"
  "CMakeFiles/rubick_trace.dir/job.cc.o.d"
  "CMakeFiles/rubick_trace.dir/trace_gen.cc.o"
  "CMakeFiles/rubick_trace.dir/trace_gen.cc.o.d"
  "CMakeFiles/rubick_trace.dir/trace_io.cc.o"
  "CMakeFiles/rubick_trace.dir/trace_io.cc.o.d"
  "librubick_trace.a"
  "librubick_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rubick_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
