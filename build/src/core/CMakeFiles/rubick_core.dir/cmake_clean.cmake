file(REMOVE_RECURSE
  "CMakeFiles/rubick_core.dir/alloc_state.cc.o"
  "CMakeFiles/rubick_core.dir/alloc_state.cc.o.d"
  "CMakeFiles/rubick_core.dir/plan_selector.cc.o"
  "CMakeFiles/rubick_core.dir/plan_selector.cc.o.d"
  "CMakeFiles/rubick_core.dir/predictor.cc.o"
  "CMakeFiles/rubick_core.dir/predictor.cc.o.d"
  "CMakeFiles/rubick_core.dir/rubick_policy.cc.o"
  "CMakeFiles/rubick_core.dir/rubick_policy.cc.o.d"
  "CMakeFiles/rubick_core.dir/sla.cc.o"
  "CMakeFiles/rubick_core.dir/sla.cc.o.d"
  "librubick_core.a"
  "librubick_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rubick_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
