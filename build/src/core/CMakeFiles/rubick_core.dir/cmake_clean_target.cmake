file(REMOVE_RECURSE
  "librubick_core.a"
)
