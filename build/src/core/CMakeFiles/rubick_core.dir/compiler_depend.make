# Empty compiler generated dependencies file for rubick_core.
# This may be replaced when dependencies are built.
