file(REMOVE_RECURSE
  "librubick_common.a"
)
