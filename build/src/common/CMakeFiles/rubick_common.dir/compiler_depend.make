# Empty compiler generated dependencies file for rubick_common.
# This may be replaced when dependencies are built.
