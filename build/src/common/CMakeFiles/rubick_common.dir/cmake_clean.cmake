file(REMOVE_RECURSE
  "CMakeFiles/rubick_common.dir/cli.cc.o"
  "CMakeFiles/rubick_common.dir/cli.cc.o.d"
  "CMakeFiles/rubick_common.dir/log.cc.o"
  "CMakeFiles/rubick_common.dir/log.cc.o.d"
  "CMakeFiles/rubick_common.dir/optim.cc.o"
  "CMakeFiles/rubick_common.dir/optim.cc.o.d"
  "CMakeFiles/rubick_common.dir/resource.cc.o"
  "CMakeFiles/rubick_common.dir/resource.cc.o.d"
  "CMakeFiles/rubick_common.dir/rng.cc.o"
  "CMakeFiles/rubick_common.dir/rng.cc.o.d"
  "CMakeFiles/rubick_common.dir/stats.cc.o"
  "CMakeFiles/rubick_common.dir/stats.cc.o.d"
  "CMakeFiles/rubick_common.dir/table.cc.o"
  "CMakeFiles/rubick_common.dir/table.cc.o.d"
  "librubick_common.a"
  "librubick_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rubick_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
