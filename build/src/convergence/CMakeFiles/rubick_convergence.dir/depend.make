# Empty dependencies file for rubick_convergence.
# This may be replaced when dependencies are built.
