
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/convergence/dataset.cc" "src/convergence/CMakeFiles/rubick_convergence.dir/dataset.cc.o" "gcc" "src/convergence/CMakeFiles/rubick_convergence.dir/dataset.cc.o.d"
  "/root/repo/src/convergence/mlp.cc" "src/convergence/CMakeFiles/rubick_convergence.dir/mlp.cc.o" "gcc" "src/convergence/CMakeFiles/rubick_convergence.dir/mlp.cc.o.d"
  "/root/repo/src/convergence/trainer.cc" "src/convergence/CMakeFiles/rubick_convergence.dir/trainer.cc.o" "gcc" "src/convergence/CMakeFiles/rubick_convergence.dir/trainer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/rubick_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
