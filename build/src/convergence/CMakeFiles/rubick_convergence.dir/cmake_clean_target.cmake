file(REMOVE_RECURSE
  "librubick_convergence.a"
)
