file(REMOVE_RECURSE
  "CMakeFiles/rubick_convergence.dir/dataset.cc.o"
  "CMakeFiles/rubick_convergence.dir/dataset.cc.o.d"
  "CMakeFiles/rubick_convergence.dir/mlp.cc.o"
  "CMakeFiles/rubick_convergence.dir/mlp.cc.o.d"
  "CMakeFiles/rubick_convergence.dir/trainer.cc.o"
  "CMakeFiles/rubick_convergence.dir/trainer.cc.o.d"
  "librubick_convergence.a"
  "librubick_convergence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rubick_convergence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
