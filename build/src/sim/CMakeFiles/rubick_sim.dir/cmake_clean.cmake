file(REMOVE_RECURSE
  "CMakeFiles/rubick_sim.dir/perf_store.cc.o"
  "CMakeFiles/rubick_sim.dir/perf_store.cc.o.d"
  "CMakeFiles/rubick_sim.dir/report.cc.o"
  "CMakeFiles/rubick_sim.dir/report.cc.o.d"
  "CMakeFiles/rubick_sim.dir/simulator.cc.o"
  "CMakeFiles/rubick_sim.dir/simulator.cc.o.d"
  "librubick_sim.a"
  "librubick_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rubick_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
