# Empty dependencies file for rubick_sim.
# This may be replaced when dependencies are built.
