file(REMOVE_RECURSE
  "librubick_sim.a"
)
