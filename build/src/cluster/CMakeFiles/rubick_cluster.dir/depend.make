# Empty dependencies file for rubick_cluster.
# This may be replaced when dependencies are built.
