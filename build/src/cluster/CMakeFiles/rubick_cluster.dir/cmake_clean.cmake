file(REMOVE_RECURSE
  "CMakeFiles/rubick_cluster.dir/cluster.cc.o"
  "CMakeFiles/rubick_cluster.dir/cluster.cc.o.d"
  "CMakeFiles/rubick_cluster.dir/placement.cc.o"
  "CMakeFiles/rubick_cluster.dir/placement.cc.o.d"
  "librubick_cluster.a"
  "librubick_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rubick_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
