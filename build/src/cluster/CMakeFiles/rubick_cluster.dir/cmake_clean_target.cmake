file(REMOVE_RECURSE
  "librubick_cluster.a"
)
