file(REMOVE_RECURSE
  "librubick_plan.a"
)
