
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/plan/enumerate.cc" "src/plan/CMakeFiles/rubick_plan.dir/enumerate.cc.o" "gcc" "src/plan/CMakeFiles/rubick_plan.dir/enumerate.cc.o.d"
  "/root/repo/src/plan/execution_plan.cc" "src/plan/CMakeFiles/rubick_plan.dir/execution_plan.cc.o" "gcc" "src/plan/CMakeFiles/rubick_plan.dir/execution_plan.cc.o.d"
  "/root/repo/src/plan/memory_estimator.cc" "src/plan/CMakeFiles/rubick_plan.dir/memory_estimator.cc.o" "gcc" "src/plan/CMakeFiles/rubick_plan.dir/memory_estimator.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/model/CMakeFiles/rubick_model.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/rubick_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
