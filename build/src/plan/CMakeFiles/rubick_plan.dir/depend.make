# Empty dependencies file for rubick_plan.
# This may be replaced when dependencies are built.
