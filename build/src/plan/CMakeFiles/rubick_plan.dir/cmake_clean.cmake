file(REMOVE_RECURSE
  "CMakeFiles/rubick_plan.dir/enumerate.cc.o"
  "CMakeFiles/rubick_plan.dir/enumerate.cc.o.d"
  "CMakeFiles/rubick_plan.dir/execution_plan.cc.o"
  "CMakeFiles/rubick_plan.dir/execution_plan.cc.o.d"
  "CMakeFiles/rubick_plan.dir/memory_estimator.cc.o"
  "CMakeFiles/rubick_plan.dir/memory_estimator.cc.o.d"
  "librubick_plan.a"
  "librubick_plan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rubick_plan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
