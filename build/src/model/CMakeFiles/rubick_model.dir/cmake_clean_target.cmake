file(REMOVE_RECURSE
  "librubick_model.a"
)
