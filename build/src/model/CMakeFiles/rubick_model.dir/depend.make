# Empty dependencies file for rubick_model.
# This may be replaced when dependencies are built.
