file(REMOVE_RECURSE
  "CMakeFiles/rubick_model.dir/model_spec.cc.o"
  "CMakeFiles/rubick_model.dir/model_spec.cc.o.d"
  "CMakeFiles/rubick_model.dir/model_zoo.cc.o"
  "CMakeFiles/rubick_model.dir/model_zoo.cc.o.d"
  "librubick_model.a"
  "librubick_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rubick_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
