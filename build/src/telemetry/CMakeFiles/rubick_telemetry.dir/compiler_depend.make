# Empty compiler generated dependencies file for rubick_telemetry.
# This may be replaced when dependencies are built.
