file(REMOVE_RECURSE
  "librubick_telemetry.a"
)
