file(REMOVE_RECURSE
  "CMakeFiles/rubick_telemetry.dir/timeline.cc.o"
  "CMakeFiles/rubick_telemetry.dir/timeline.cc.o.d"
  "librubick_telemetry.a"
  "librubick_telemetry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rubick_telemetry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
