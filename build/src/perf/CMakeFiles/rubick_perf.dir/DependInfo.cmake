
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/perf/analytic.cc" "src/perf/CMakeFiles/rubick_perf.dir/analytic.cc.o" "gcc" "src/perf/CMakeFiles/rubick_perf.dir/analytic.cc.o.d"
  "/root/repo/src/perf/fitter.cc" "src/perf/CMakeFiles/rubick_perf.dir/fitter.cc.o" "gcc" "src/perf/CMakeFiles/rubick_perf.dir/fitter.cc.o.d"
  "/root/repo/src/perf/oracle.cc" "src/perf/CMakeFiles/rubick_perf.dir/oracle.cc.o" "gcc" "src/perf/CMakeFiles/rubick_perf.dir/oracle.cc.o.d"
  "/root/repo/src/perf/profiler.cc" "src/perf/CMakeFiles/rubick_perf.dir/profiler.cc.o" "gcc" "src/perf/CMakeFiles/rubick_perf.dir/profiler.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/plan/CMakeFiles/rubick_plan.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/rubick_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/rubick_model.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/rubick_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
