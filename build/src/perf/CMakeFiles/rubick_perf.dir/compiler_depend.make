# Empty compiler generated dependencies file for rubick_perf.
# This may be replaced when dependencies are built.
