file(REMOVE_RECURSE
  "CMakeFiles/rubick_perf.dir/analytic.cc.o"
  "CMakeFiles/rubick_perf.dir/analytic.cc.o.d"
  "CMakeFiles/rubick_perf.dir/fitter.cc.o"
  "CMakeFiles/rubick_perf.dir/fitter.cc.o.d"
  "CMakeFiles/rubick_perf.dir/oracle.cc.o"
  "CMakeFiles/rubick_perf.dir/oracle.cc.o.d"
  "CMakeFiles/rubick_perf.dir/profiler.cc.o"
  "CMakeFiles/rubick_perf.dir/profiler.cc.o.d"
  "librubick_perf.a"
  "librubick_perf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rubick_perf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
