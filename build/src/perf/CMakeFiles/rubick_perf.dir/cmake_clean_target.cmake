file(REMOVE_RECURSE
  "librubick_perf.a"
)
