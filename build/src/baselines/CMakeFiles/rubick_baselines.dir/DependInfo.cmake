
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/antman.cc" "src/baselines/CMakeFiles/rubick_baselines.dir/antman.cc.o" "gcc" "src/baselines/CMakeFiles/rubick_baselines.dir/antman.cc.o.d"
  "/root/repo/src/baselines/common.cc" "src/baselines/CMakeFiles/rubick_baselines.dir/common.cc.o" "gcc" "src/baselines/CMakeFiles/rubick_baselines.dir/common.cc.o.d"
  "/root/repo/src/baselines/equal_share.cc" "src/baselines/CMakeFiles/rubick_baselines.dir/equal_share.cc.o" "gcc" "src/baselines/CMakeFiles/rubick_baselines.dir/equal_share.cc.o.d"
  "/root/repo/src/baselines/sia.cc" "src/baselines/CMakeFiles/rubick_baselines.dir/sia.cc.o" "gcc" "src/baselines/CMakeFiles/rubick_baselines.dir/sia.cc.o.d"
  "/root/repo/src/baselines/synergy.cc" "src/baselines/CMakeFiles/rubick_baselines.dir/synergy.cc.o" "gcc" "src/baselines/CMakeFiles/rubick_baselines.dir/synergy.cc.o.d"
  "/root/repo/src/baselines/tiresias.cc" "src/baselines/CMakeFiles/rubick_baselines.dir/tiresias.cc.o" "gcc" "src/baselines/CMakeFiles/rubick_baselines.dir/tiresias.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/rubick_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/rubick_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/telemetry/CMakeFiles/rubick_telemetry.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/rubick_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/perf/CMakeFiles/rubick_perf.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/rubick_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/plan/CMakeFiles/rubick_plan.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/rubick_model.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/rubick_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
