file(REMOVE_RECURSE
  "CMakeFiles/rubick_baselines.dir/antman.cc.o"
  "CMakeFiles/rubick_baselines.dir/antman.cc.o.d"
  "CMakeFiles/rubick_baselines.dir/common.cc.o"
  "CMakeFiles/rubick_baselines.dir/common.cc.o.d"
  "CMakeFiles/rubick_baselines.dir/equal_share.cc.o"
  "CMakeFiles/rubick_baselines.dir/equal_share.cc.o.d"
  "CMakeFiles/rubick_baselines.dir/sia.cc.o"
  "CMakeFiles/rubick_baselines.dir/sia.cc.o.d"
  "CMakeFiles/rubick_baselines.dir/synergy.cc.o"
  "CMakeFiles/rubick_baselines.dir/synergy.cc.o.d"
  "CMakeFiles/rubick_baselines.dir/tiresias.cc.o"
  "CMakeFiles/rubick_baselines.dir/tiresias.cc.o.d"
  "librubick_baselines.a"
  "librubick_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rubick_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
