# Empty compiler generated dependencies file for rubick_baselines.
# This may be replaced when dependencies are built.
