file(REMOVE_RECURSE
  "librubick_baselines.a"
)
