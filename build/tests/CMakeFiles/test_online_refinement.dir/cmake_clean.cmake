file(REMOVE_RECURSE
  "CMakeFiles/test_online_refinement.dir/test_online_refinement.cc.o"
  "CMakeFiles/test_online_refinement.dir/test_online_refinement.cc.o.d"
  "test_online_refinement"
  "test_online_refinement.pdb"
  "test_online_refinement[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_online_refinement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
