# Empty dependencies file for test_online_refinement.
# This may be replaced when dependencies are built.
