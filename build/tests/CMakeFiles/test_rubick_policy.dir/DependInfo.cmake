
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_rubick_policy.cc" "tests/CMakeFiles/test_rubick_policy.dir/test_rubick_policy.cc.o" "gcc" "tests/CMakeFiles/test_rubick_policy.dir/test_rubick_policy.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/rubick_core.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/rubick_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/rubick_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/convergence/CMakeFiles/rubick_convergence.dir/DependInfo.cmake"
  "/root/repo/build/src/telemetry/CMakeFiles/rubick_telemetry.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/rubick_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/perf/CMakeFiles/rubick_perf.dir/DependInfo.cmake"
  "/root/repo/build/src/plan/CMakeFiles/rubick_plan.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/rubick_model.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/rubick_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/rubick_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
