file(REMOVE_RECURSE
  "CMakeFiles/test_rubick_policy.dir/test_rubick_policy.cc.o"
  "CMakeFiles/test_rubick_policy.dir/test_rubick_policy.cc.o.d"
  "test_rubick_policy"
  "test_rubick_policy.pdb"
  "test_rubick_policy[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rubick_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
