# Empty dependencies file for test_rubick_policy.
# This may be replaced when dependencies are built.
