# Empty compiler generated dependencies file for test_sla.
# This may be replaced when dependencies are built.
