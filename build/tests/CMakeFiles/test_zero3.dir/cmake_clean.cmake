file(REMOVE_RECURSE
  "CMakeFiles/test_zero3.dir/test_zero3.cc.o"
  "CMakeFiles/test_zero3.dir/test_zero3.cc.o.d"
  "test_zero3"
  "test_zero3.pdb"
  "test_zero3[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_zero3.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
