# Empty dependencies file for test_zero3.
# This may be replaced when dependencies are built.
