file(REMOVE_RECURSE
  "CMakeFiles/test_policy_behaviors.dir/test_policy_behaviors.cc.o"
  "CMakeFiles/test_policy_behaviors.dir/test_policy_behaviors.cc.o.d"
  "test_policy_behaviors"
  "test_policy_behaviors.pdb"
  "test_policy_behaviors[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_policy_behaviors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
