# Empty dependencies file for test_policy_behaviors.
# This may be replaced when dependencies are built.
