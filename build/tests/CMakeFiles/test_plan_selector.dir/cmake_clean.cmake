file(REMOVE_RECURSE
  "CMakeFiles/test_plan_selector.dir/test_plan_selector.cc.o"
  "CMakeFiles/test_plan_selector.dir/test_plan_selector.cc.o.d"
  "test_plan_selector"
  "test_plan_selector.pdb"
  "test_plan_selector[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_plan_selector.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
