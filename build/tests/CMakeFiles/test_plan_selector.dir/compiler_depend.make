# Empty compiler generated dependencies file for test_plan_selector.
# This may be replaced when dependencies are built.
