file(REMOVE_RECURSE
  "CMakeFiles/test_simulator_validation.dir/test_simulator_validation.cc.o"
  "CMakeFiles/test_simulator_validation.dir/test_simulator_validation.cc.o.d"
  "test_simulator_validation"
  "test_simulator_validation.pdb"
  "test_simulator_validation[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_simulator_validation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
