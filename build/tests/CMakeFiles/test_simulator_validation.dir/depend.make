# Empty dependencies file for test_simulator_validation.
# This may be replaced when dependencies are built.
