# Empty compiler generated dependencies file for test_fitter.
# This may be replaced when dependencies are built.
