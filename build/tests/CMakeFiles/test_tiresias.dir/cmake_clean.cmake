file(REMOVE_RECURSE
  "CMakeFiles/test_tiresias.dir/test_tiresias.cc.o"
  "CMakeFiles/test_tiresias.dir/test_tiresias.cc.o.d"
  "test_tiresias"
  "test_tiresias.pdb"
  "test_tiresias[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tiresias.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
