# Empty dependencies file for test_tiresias.
# This may be replaced when dependencies are built.
