file(REMOVE_RECURSE
  "CMakeFiles/rubick_simulate.dir/rubick_simulate.cpp.o"
  "CMakeFiles/rubick_simulate.dir/rubick_simulate.cpp.o.d"
  "rubick_simulate"
  "rubick_simulate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rubick_simulate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
