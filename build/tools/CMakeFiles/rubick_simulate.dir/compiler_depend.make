# Empty compiler generated dependencies file for rubick_simulate.
# This may be replaced when dependencies are built.
