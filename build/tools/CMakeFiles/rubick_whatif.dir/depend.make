# Empty dependencies file for rubick_whatif.
# This may be replaced when dependencies are built.
