file(REMOVE_RECURSE
  "CMakeFiles/rubick_whatif.dir/rubick_whatif.cpp.o"
  "CMakeFiles/rubick_whatif.dir/rubick_whatif.cpp.o.d"
  "rubick_whatif"
  "rubick_whatif.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rubick_whatif.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
