# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(tool_simulate_smoke "/root/repo/build/tools/rubick_simulate" "--jobs=20" "--window-hours=1" "--seed=3")
set_tests_properties(tool_simulate_smoke PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;11;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(tool_simulate_mt_smoke "/root/repo/build/tools/rubick_simulate" "--policy=antman" "--variant=mt" "--jobs=20" "--window-hours=1")
set_tests_properties(tool_simulate_mt_smoke PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;13;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(tool_simulate_trace_roundtrip "/root/repo/build/tools/rubick_simulate" "--jobs=10" "--window-hours=1" "--trace-out=/root/repo/build/smoke_trace.csv")
set_tests_properties(tool_simulate_trace_roundtrip PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;16;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(tool_simulate_trace_in "/root/repo/build/tools/rubick_simulate" "--trace-in=/root/repo/build/smoke_trace.csv" "--policy=tiresias")
set_tests_properties(tool_simulate_trace_in PROPERTIES  DEPENDS "tool_simulate_trace_roundtrip" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;19;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(tool_whatif_smoke "/root/repo/build/tools/rubick_whatif" "--model=T5" "--gpus=4" "--cpus=16" "--top=5")
set_tests_properties(tool_whatif_smoke PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;24;add_test;/root/repo/tools/CMakeLists.txt;0;")
